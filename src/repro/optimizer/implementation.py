"""Implementation rules: derive physical operators from logical ones.

Mirrors the paper's rule category (2): "a physical operator in the same
group".  For each logical expression we generate every applicable
implementation:

* ``Get``        -> ``TableScan`` plus one ``IndexScan`` per index;
* ``Join``       -> ``NestedLoopJoin`` always, plus ``HashJoin`` and
  ``MergeJoin`` when the predicate has equality conjuncts that straddle
  the two sides;
* ``Select``     -> ``Filter``;
* ``Aggregate``  -> ``HashAggregate`` and ``StreamAggregate`` (hash only
  when there are grouping columns);
* ``Project``    -> ``Project``.

A final pass inserts ``Sort`` enforcers: whenever some physical operator
requires a sort order of a child group (merge join inputs, stream
aggregate input) — or the query's ORDER BY requires one of the root — the
child group receives a ``Sort`` expression whose own child is the group
itself.  That is exactly the shape of the paper's Figure 2, where Sort
operators appear inside scan groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    Scalar,
    make_conjunction,
    split_conjuncts,
)
from repro.algebra.logical import (
    LogicalAggregate,
    LogicalGet,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
)
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalOperator,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)
from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError
from repro.memo.group import GroupExpr
from repro.memo.memo import Memo

__all__ = ["ImplementationConfig", "implement_memo", "extract_equi_keys"]


@dataclass(frozen=True)
class ImplementationConfig:
    """Which implementations to generate (ablation knobs).

    ``enable_index_nl_join`` adds index-lookup joins (the paper's "index
    utilization" dimension); it is off by default so that the documented
    baseline spaces stay comparable — the index-join ablation benchmark
    measures its effect explicitly.
    """

    enable_index_scans: bool = True
    enable_hash_join: bool = True
    enable_merge_join: bool = True
    enable_nested_loop_join: bool = True
    enable_index_nl_join: bool = False
    enable_stream_aggregate: bool = True
    enable_sort_enforcers: bool = True


def _equality_analysis(
    predicate: Scalar,
) -> tuple[
    tuple[tuple[ColumnId, ColumnId, str, str, tuple, tuple, Scalar], ...],
    tuple[Scalar, ...],
]:
    """Classify a predicate's conjuncts once, memoized on the object.

    Returns ``(candidate equality pairs, other conjuncts)`` where each
    pair entry is ``(a, b, a_alias, b_alias, sort_key_ab, sort_key_ba,
    conjunct)``.  Join predicates are interned by the join graph, so
    across a whole memo the same predicate object is analyzed for both
    join orientations and for every implementation rule — the conjunct
    walk happens exactly once.
    """
    cached = predicate.__dict__.get("_eq_analysis")
    if cached is None:
        eq_pairs = []
        others: list[Scalar] = []
        for conjunct in split_conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is CompOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                a = conjunct.left.column_id
                b = conjunct.right.column_id
                # Both orientations' sort keys are precomputed so the
                # per-join extraction sorts plain string tuples.
                eq_pairs.append(
                    (
                        a,
                        b,
                        a.alias,
                        b.alias,
                        (a.alias, a.column, b.alias, b.column),
                        (b.alias, b.column, a.alias, a.column),
                        conjunct,
                    )
                )
            else:
                others.append(conjunct)
        cached = (tuple(eq_pairs), tuple(others))
        object.__setattr__(predicate, "_eq_analysis", cached)
    return cached


def extract_equi_keys(
    predicate: Scalar | None,
    left_relations: frozenset[str],
    right_relations: frozenset[str],
) -> tuple[tuple[ColumnId, ...], tuple[ColumnId, ...], Scalar | None]:
    """Split a join predicate into equi-join keys plus a residual.

    Returns ``(left_keys, right_keys, residual)``; the key lists are empty
    when no equality conjunct straddles the two sides.  Key pairs are
    sorted canonically so the same logical join always yields the same
    physical operator identity.
    """
    if predicate is None:
        return (), (), None
    eq_pairs, others = _equality_analysis(predicate)
    pairs: list[tuple[tuple, ColumnId, ColumnId]] = []
    residual: list[Scalar] = list(others)
    for a, b, a_alias, b_alias, key_ab, key_ba, conjunct in eq_pairs:
        if a_alias in left_relations and b_alias in right_relations:
            pairs.append((key_ab, a, b))
        elif b_alias in left_relations and a_alias in right_relations:
            pairs.append((key_ba, b, a))
        else:
            residual.append(conjunct)
    if not pairs:
        return (), (), make_conjunction(residual) if residual else None
    if len(pairs) > 1:
        pairs.sort()
    left_keys = tuple(pair[1] for pair in pairs)
    right_keys = tuple(pair[2] for pair in pairs)
    if residual:
        return left_keys, right_keys, make_conjunction(residual)
    return left_keys, right_keys, None


def _implement_get(
    expr: GroupExpr, memo: Memo, catalog: Catalog, config: ImplementationConfig
) -> int:
    op = expr.op
    assert isinstance(op, LogicalGet)
    group = memo.group(expr.group_id)
    inserted = 0
    scan = TableScan(table=op.table, alias=op.alias, predicate=op.predicate)
    if memo.insert(scan, (), group) is not None:
        inserted += 1
    if config.enable_index_scans:
        for index in catalog.indexes(op.table):
            key_order = tuple(ColumnId(op.alias, col) for col in index.key)
            scan = IndexScan(
                table=op.table,
                alias=op.alias,
                index_name=index.name,
                key_order=key_order,
                predicate=op.predicate,
            )
            if memo.insert(scan, (), group) is not None:
                inserted += 1
    return inserted


_CROSS_NLJ = NestedLoopJoin(None)


def _nested_loop_join(predicate: Scalar | None) -> NestedLoopJoin:
    """The nested-loops operator for a predicate, interned per object:
    both orientations of a logical join share the predicate, so they share
    the physical operator (and its cached memo key) too."""
    if predicate is None:
        return _CROSS_NLJ
    op = predicate.__dict__.get("_nlj_op")
    if op is None:
        op = NestedLoopJoin(predicate)
        object.__setattr__(predicate, "_nlj_op", op)
    return op


def _implement_index_nl_join(
    expr: GroupExpr,
    memo: Memo,
    catalog: Catalog,
    left_keys: tuple[ColumnId, ...],
    right_keys: tuple[ColumnId, ...],
) -> int:
    """Index-lookup joins: the inner side must be a single base table with
    an index whose key prefix is covered by the join's equality columns.

    Unconsumed conjuncts (non-equi conjuncts and equality pairs beyond the
    matched index prefix) stay behind as the operator's residual.
    """
    op = expr.op
    assert isinstance(op, LogicalJoin)
    right_group = memo.group(expr.children[1])
    if len(right_group.relations) != 1:
        return 0
    get = next(
        (e.op for e in right_group.logical_exprs() if isinstance(e.op, LogicalGet)),
        None,
    )
    if get is None:
        return 0

    by_inner_column = {
        inner.column: (outer, inner) for outer, inner in zip(left_keys, right_keys)
    }
    group = memo.group(expr.group_id)
    inserted = 0
    for index in catalog.indexes(get.table):
        outer_keys: list[ColumnId] = []
        inner_keys: list[ColumnId] = []
        for key_column in index.key:
            pair = by_inner_column.get(key_column)
            if pair is None:
                break
            outer_keys.append(pair[0])
            inner_keys.append(pair[1])
        if not outer_keys:
            continue
        consumed = {
            Comparison(CompOp.EQ, ColumnRef(o), ColumnRef(i)).fingerprint()
            for o, i in zip(outer_keys, inner_keys)
        }
        leftover = [
            conjunct
            for conjunct in split_conjuncts(op.predicate)
            if conjunct.fingerprint() not in consumed
        ]
        join = IndexNestedLoopJoin(
            inner_table=get.table,
            inner_alias=get.alias,
            index_name=index.name,
            outer_keys=tuple(outer_keys),
            inner_keys=tuple(inner_keys),
            inner_predicate=get.predicate,
            residual=make_conjunction(leftover),
        )
        if memo.insert(join, (expr.children[0],), group) is not None:
            inserted += 1
    return inserted


def _implement_unary(
    expr: GroupExpr, memo: Memo, config: ImplementationConfig
) -> int:
    op = expr.op
    group = memo.group(expr.group_id)
    inserted = 0
    if isinstance(op, LogicalSelect):
        if memo.insert(PhysicalFilter(op.predicate), expr.children, group) is not None:
            inserted += 1
    elif isinstance(op, LogicalAggregate):
        if op.group_by:
            if memo.insert(
                HashAggregate(op.group_by, op.aggregates), expr.children, group
            ) is not None:
                inserted += 1
            if config.enable_stream_aggregate:
                if memo.insert(
                    StreamAggregate(op.group_by, op.aggregates), expr.children, group
                ) is not None:
                    inserted += 1
        else:
            # Scalar aggregate: a single streaming pass, no requirement.
            if memo.insert(
                StreamAggregate(op.group_by, op.aggregates), expr.children, group
            ) is not None:
                inserted += 1
    elif isinstance(op, LogicalProject):
        if memo.insert(PhysicalProject(op.outputs), expr.children, group) is not None:
            inserted += 1
    else:
        raise OptimizerError(f"no implementation rule for {op.name}")
    return inserted


def implement_memo(
    memo: Memo,
    catalog: Catalog,
    config: ImplementationConfig | None = None,
    root_order: tuple[ColumnId, ...] = (),
) -> int:
    """Generate physical operators for every logical expression, then add
    the Sort enforcers the physical operators (and ORDER BY) require.

    Returns the number of physical expressions inserted.
    """
    if config is None:
        config = ImplementationConfig()
    inserted = 0
    groups = memo.groups
    insert = memo.insert
    enable_nlj = config.enable_nested_loop_join
    enable_hash = config.enable_hash_join
    enable_merge = config.enable_merge_join
    enable_index_nlj = config.enable_index_nl_join
    # Merge-join child-order requirements are collected inline while the
    # operators are built (their keys are at hand), sparing the enforcer
    # pass a virtual call per join child.
    collect_merge_reqs = enable_merge and config.enable_sort_enforcers
    sort_requirements: dict[tuple[int, tuple[ColumnId, ...]], None] = {}
    record_requirement = sort_requirements.setdefault
    # Snapshot: implementation adds physical exprs only, so iterating over
    # the logical expressions present now is exhaustive.  Joins — the bulk
    # of any explored memo — are handled inline with hoisted locals.
    logical = [
        expr
        for group in memo.groups
        for expr in group.exprs
        if not expr.is_physical
    ]
    for expr in logical:
        op = expr.op
        if type(op) is LogicalJoin:
            group = groups[expr.group_id]
            children = expr.children
            predicate = op.predicate
            left_keys, right_keys, residual = extract_equi_keys(
                predicate,
                groups[children[0]].relations,
                groups[children[1]].relations,
            )
            if enable_nlj:
                if insert(_nested_loop_join(predicate), children, group) is not None:
                    inserted += 1
            if left_keys:
                if enable_hash:
                    hash_join = HashJoin(left_keys, right_keys, residual)
                    if insert(hash_join, children, group) is not None:
                        inserted += 1
                if enable_merge:
                    merge_join = MergeJoin(left_keys, right_keys, residual)
                    if insert(merge_join, children, group) is not None:
                        inserted += 1
                    if collect_merge_reqs:
                        record_requirement((children[0], left_keys))
                        record_requirement((children[1], right_keys))
                if enable_index_nlj:
                    inserted += _implement_index_nl_join(
                        expr, memo, catalog, left_keys, right_keys
                    )
        elif isinstance(op, LogicalGet):
            inserted += _implement_get(expr, memo, catalog, config)
        else:
            inserted += _implement_unary(expr, memo, config)

    if config.enable_sort_enforcers:
        inserted += _insert_enforcers(
            memo,
            root_order,
            required=sort_requirements,
            skip_merge_joins=collect_merge_reqs,
        )
    return inserted


_NO_CHILD_ORDER = PhysicalOperator.required_child_order


def _insert_enforcers(
    memo: Memo,
    root_order: tuple[ColumnId, ...],
    required: dict[tuple[int, tuple[ColumnId, ...]], None] | None = None,
    skip_merge_joins: bool = False,
) -> int:
    """Add ``Sort`` expressions for every required (group, order) pair.

    Requirements are deduplicated (in first-occurrence order, so memo
    layout matches the historical one-insert-per-occurrence loop) before
    touching the memo: a 12-way join yields tens of thousands of merge
    joins but only a handful of distinct (group, order) pairs.  Operators
    that inherit the base class's trivial ``required_child_order`` are
    skipped without calling it; merge joins are skipped entirely when the
    caller already collected their requirements into ``required``.
    """
    if required is None:
        required = {}
    for group in memo.groups:
        for expr in group.exprs:
            if not expr.is_physical:
                continue
            op = expr.op
            op_type = type(op)
            if op_type.required_child_order is _NO_CHILD_ORDER:
                continue
            if skip_merge_joins and op_type is MergeJoin:
                continue
            for child_pos, child_gid in enumerate(expr.children):
                order = op.required_child_order(child_pos)
                if order:
                    required.setdefault((child_gid, order))
    if root_order and memo.root_group_id is not None:
        required.setdefault((memo.root_group_id, root_order))

    inserted = 0
    for gid, order in required:
        group = memo.group(gid)
        if memo.insert(Sort(order), (gid,), group) is not None:
            inserted += 1
    return inserted
