"""Best-plan extraction: dynamic programming over (group, required order).

"The optimal query plan is the one rooted in the most cost effective
operator in the root group.  To extract this plan, we follow the
references to the children's groups and select the most cost effective
operator of each group, observing compatibility of physical properties."
(Section 2.)

The DP state is a group plus the sort order required of it.  For each
state we take the cheapest of (a) any non-enforcer operator whose
delivered order satisfies the requirement, with children optimized under
the operator's own child requirements, and (b) when an order is required,
the group's Sort enforcer over the group optimized order-free.  Because
operator costs depend only on group cardinalities, this DP finds the true
global minimum over the entire plan space — a property the test suite
checks by exhaustive enumeration on small queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.physical import PhysicalOperator, Sort
from repro.algebra.properties import SortOrder, order_satisfies
from repro.errors import OptimizerError
from repro.memo.memo import Memo
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import PlanNode

__all__ = ["BestPlanSearch", "find_best_plan"]

_IN_PROGRESS = object()


@dataclass
class _Best:
    cost: float
    plan: PlanNode


_MISSING = object()
_INFINITY = float("inf")

#: trivial per-child requirements by arity, for operators inheriting the
#: base class's ``required_child_order``
_EMPTY_REQS: tuple[tuple, ...] = ((), ((),), ((), ()), ((), (), ()))

_NO_CHILD_ORDER = PhysicalOperator.required_child_order
_NO_DELIVERED_ORDER = PhysicalOperator.delivered_order


class BestPlanSearch:
    """Memoized best-plan search over one memo.

    States are (group, required sort order).  The order-free state — the
    overwhelmingly common one — is computed in a single fused pass over
    the group's physical expressions; the same pass records the few
    order-delivering candidates (merge joins, index scans, ...) and Sort
    enforcers, which is all that ordered states ever need to scan.
    Operator-local costs are computed exactly once per expression.
    """

    def __init__(self, memo: Memo, cost_model: CostModel):
        self.memo = memo
        self.cost_model = cost_model
        #: ordered states only; the order-free state lives in ``_best0``
        self._cache: dict[tuple[int, SortOrder], _Best | None | object] = {}
        #: order-free state per gid, indexed directly (no tuple keys on
        #: the hottest lookup of the search)
        self._best0: list = [_MISSING] * len(memo.groups)
        #: gid -> (cardinality, order-delivering candidates, Sort enforcers)
        self._ordered_info: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def best(self, gid: int, required: SortOrder = ()) -> _Best | None:
        """Cheapest plan for group ``gid`` delivering ``required`` order,
        or ``None`` when no operator combination can satisfy it."""
        if not required:
            best0 = self._best0
            cached = best0[gid]
            if cached is not _MISSING:
                if cached is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {gid}"
                    )
                return cached
            best0[gid] = _IN_PROGRESS
            result = self._best_unordered(gid)
            best0[gid] = result
            return result
        key = (gid, required)
        cache = self._cache
        cached = cache.get(key, _MISSING)
        if cached is not _MISSING:
            if cached is _IN_PROGRESS:
                raise OptimizerError(f"cycle detected while optimizing group {gid}")
            return cached
        cache[key] = _IN_PROGRESS
        result = self._best_ordered(gid, required)
        cache[key] = result
        return result

    # ------------------------------------------------------------------
    def _candidate(self, expr, op, cardinality: float, groups) -> tuple:
        """The per-expression candidate record: (op, children, delivered
        order, per-child requirements, local cost, local id)."""
        operator_cost = self.cost_model.operator_cost
        children = expr.children
        arity = len(children)
        if type(op).required_child_order is _NO_CHILD_ORDER:
            child_reqs = _EMPTY_REQS[arity]
        else:
            child_reqs = tuple(
                op.required_child_order(i) for i in range(arity)
            )
        if arity == 2:
            child_rows = (
                groups[children[0]].cardinality,
                groups[children[1]].cardinality,
            )
        elif arity == 1:
            child_rows = (groups[children[0]].cardinality,)
        else:
            child_rows = ()
        if type(op).delivered_order is _NO_DELIVERED_ORDER:
            delivered = ()
        else:
            delivered = op.delivered_order()
        local = operator_cost(op, cardinality, child_rows)
        return (op, children, delivered, child_reqs, local, expr.local_id)

    def _store_ordered_info(
        self, gid: int, group, cardinality: float, ordered, enforcers
    ) -> tuple:
        """Snapshot the order-state tables, stamped with the expression
        count so pruning-time mutation of the group is detected."""
        info = (len(group.exprs), cardinality, ordered, enforcers)
        self._ordered_info[gid] = info
        return info

    def _rebuild_ordered_info(self, gid: int, group, cardinality: float) -> tuple:
        """Re-collect the order-delivering candidates and enforcers from
        the group's *current* expressions (after pruning removed some)."""
        groups = self.memo.groups
        operator_cost = self.cost_model.operator_cost
        ordered: list[tuple] = []
        enforcers: list[tuple] = []
        for expr in group.exprs:
            if not expr.is_physical:
                continue
            op = expr.op
            if expr.is_enforcer:
                if isinstance(op, Sort):
                    enforcers.append(
                        (expr, operator_cost(op, cardinality, (cardinality,)))
                    )
                continue
            candidate = self._candidate(expr, op, cardinality, groups)
            if candidate[2]:
                ordered.append(candidate)
        return self._store_ordered_info(gid, group, cardinality, ordered, enforcers)

    # ------------------------------------------------------------------
    def _best_unordered(self, gid: int) -> _Best | None:
        """The order-free state, fused with candidate-table construction."""
        group = self.memo.group(gid)
        cardinality = group.cardinality
        if cardinality is None:
            raise OptimizerError(
                f"group {gid} has no cardinality; run annotate_cardinalities first"
            )
        groups = self.memo.groups
        operator_cost = self.cost_model.operator_cost
        make_candidate = self._candidate
        cache_get = self._cache.get
        best0 = self._best0
        search = self.best
        ordered_candidates: list[tuple] = []
        enforcers: list[tuple] = []
        best_total = _INFINITY
        best_candidate: tuple | None = None

        for expr in group.exprs:
            if not expr.is_physical:
                continue
            op = expr.op
            if expr.is_enforcer:
                if isinstance(op, Sort):
                    enforcers.append(
                        (expr, operator_cost(op, cardinality, (cardinality,)))
                    )
                continue
            candidate = make_candidate(expr, op, cardinality, groups)
            _, children, delivered, child_reqs, local, _ = candidate
            if delivered:
                ordered_candidates.append(candidate)
            # The order-free state accepts every non-enforcer candidate.
            # Plans are not assembled during the scan — only the winning
            # candidate's plan is built, once, afterwards.
            total = local
            feasible = True
            for child_gid, child_req in zip(children, child_reqs):
                # Inline both cache hits: order-free child states live in
                # a gid-indexed array, ordered ones in the state dict.
                if child_req:
                    child_best = cache_get((child_gid, child_req), _MISSING)
                else:
                    child_best = best0[child_gid]
                if child_best is _MISSING:
                    child_best = search(child_gid, child_req)
                elif child_best is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {child_gid}"
                    )
                if child_best is None:
                    feasible = False
                    break
                total += child_best.cost
            if not feasible:
                continue
            if total < best_total:
                best_total = total
                best_candidate = (op, children, child_reqs, expr.local_id)

        self._store_ordered_info(
            gid, group, cardinality, ordered_candidates, enforcers
        )
        if best_candidate is None:
            return None
        return self._assemble(gid, cardinality, best_total, best_candidate)

    # ------------------------------------------------------------------
    def _best_ordered(self, gid: int, required: SortOrder) -> _Best | None:
        """A state with a sort requirement: only order-delivering
        candidates (plus the group's Sort enforcer) can satisfy it."""
        info = self._ordered_info.get(gid)
        if info is None:
            # Fill the candidate table (and the order-free state, which
            # the enforcer path consults anyway).
            self.best(gid, ())
            info = self._ordered_info[gid]
        group = self.memo.group(gid)
        if info[0] != len(group.exprs):
            # The group was mutated since the snapshot (cost-bound pruning
            # removes expressions in place): answer from live expressions,
            # matching the behavior of a from-scratch scan.
            info = self._rebuild_ordered_info(gid, group, info[1])
        _, cardinality, ordered_candidates, enforcers = info
        required_len = len(required)
        cache_get = self._cache.get
        best0 = self._best0
        search = self.best
        best_total = _INFINITY
        best_candidate: tuple | None = None

        for op, children, delivered, child_reqs, local, local_id in ordered_candidates:
            if delivered[:required_len] != required:
                continue
            total = local
            feasible = True
            for child_gid, child_req in zip(children, child_reqs):
                if child_req:
                    child_best = cache_get((child_gid, child_req), _MISSING)
                else:
                    child_best = best0[child_gid]
                if child_best is _MISSING:
                    child_best = search(child_gid, child_req)
                elif child_best is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {child_gid}"
                    )
                if child_best is None:
                    feasible = False
                    break
                total += child_best.cost
            if not feasible:
                continue
            if total < best_total:
                best_total = total
                best_candidate = (op, children, child_reqs, local_id)

        best: _Best | None = None
        if best_candidate is not None:
            best = self._assemble(gid, cardinality, best_total, best_candidate)

        for expr, local in enforcers:
            if not order_satisfies(expr.op.delivered_order(), required):
                continue
            inner = search(gid, ())
            if inner is not None:
                total = local + inner.cost
                if best is None or total < best.cost:
                    best = _Best(
                        cost=total,
                        plan=PlanNode(
                            op=expr.op,
                            children=(inner.plan,),
                            group_id=gid,
                            local_id=expr.local_id,
                            cardinality=cardinality,
                        ),
                    )
            break

        return best

    # ------------------------------------------------------------------
    def _assemble(
        self, gid: int, cardinality: float, total: float, candidate: tuple
    ) -> _Best:
        """Build the plan for a scan's winning candidate (children's best
        states are all cached by the time a winner is known)."""
        op, children, child_reqs, local_id = candidate
        plans = tuple(
            self.best(child_gid, child_req).plan
            for child_gid, child_req in zip(children, child_reqs)
        )
        return _Best(
            cost=total,
            plan=PlanNode(
                op=op,
                children=plans,
                group_id=gid,
                local_id=local_id,
                cardinality=cardinality,
            ),
        )


def find_best_plan(
    memo: Memo, cost_model: CostModel, required_order: SortOrder = ()
) -> tuple[PlanNode, float]:
    """The optimizer's chosen plan and its cost."""
    search = BestPlanSearch(memo, cost_model)
    if memo.root_group_id is None:
        raise OptimizerError("memo has no root group")
    best = search.best(memo.root_group_id, required_order)
    if best is None:
        raise OptimizerError(
            "no physical plan satisfies the root requirement "
            "(are implementations/enforcers enabled?)"
        )
    return best.plan, best.cost
