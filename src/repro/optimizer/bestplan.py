"""Best-plan extraction: dynamic programming over (group, required order).

"The optimal query plan is the one rooted in the most cost effective
operator in the root group.  To extract this plan, we follow the
references to the children's groups and select the most cost effective
operator of each group, observing compatibility of physical properties."
(Section 2.)

The DP state is a group plus the sort order required of it.  For each
state we take the cheapest of (a) any non-enforcer operator whose
delivered order satisfies the requirement, with children optimized under
the operator's own child requirements, and (b) when an order is required,
the group's Sort enforcer over the group optimized order-free.  Because
operator costs depend only on group cardinalities, this DP finds the true
global minimum over the entire plan space — a property the test suite
checks by exhaustive enumeration on small queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algebra.physical import PhysicalOperator, Sort
from repro.algebra.properties import SortOrder, order_satisfies
from repro.errors import OptimizerError
from repro.kernel import active_numpy, native_available, selected_backend
from repro.kernel import native as _native
from repro.kernel.vector import (
    lex_rank_rows,
    prefix_interval_ends,
    prefix_intervals,
    range_min_pairs,
)
from repro.memo.columnar import (
    TAG_HASH,
    TAG_INDEX_SCAN,
    TAG_INLJ,
    TAG_MERGE,
    TAG_NLJ,
    TAG_STREAMAGG,
    TAG_TABLE_SCAN,
    ColumnarPhysicalStore,
)
from repro.memo.memo import Memo
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import PlanNode
from repro.resilience.faults import fault_point

__all__ = [
    "BestPlanSearch",
    "ColumnarBestPlanSearch",
    "find_best_plan",
    "find_best_plan_columnar",
]

_IN_PROGRESS = object()


@dataclass
class _Best:
    cost: float
    plan: PlanNode


_MISSING = object()
_INFINITY = float("inf")

#: trivial per-child requirements by arity, for operators inheriting the
#: base class's ``required_child_order``
_EMPTY_REQS: tuple[tuple, ...] = ((), ((),), ((), ()), ((), (), ()))

_NO_CHILD_ORDER = PhysicalOperator.required_child_order
_NO_DELIVERED_ORDER = PhysicalOperator.delivered_order


class BestPlanSearch:
    """Memoized best-plan search over one memo.

    States are (group, required sort order).  The order-free state — the
    overwhelmingly common one — is computed in a single fused pass over
    the group's physical expressions; the same pass records the few
    order-delivering candidates (merge joins, index scans, ...) and Sort
    enforcers, which is all that ordered states ever need to scan.
    Operator-local costs are computed exactly once per expression.
    """

    def __init__(self, memo: Memo, cost_model: CostModel, scope=None):
        self.memo = memo
        self.cost_model = cost_model
        self.scope = scope
        #: ordered states only; the order-free state lives in ``_best0``
        self._cache: dict[tuple[int, SortOrder], _Best | None | object] = {}
        #: order-free state per gid, indexed directly (no tuple keys on
        #: the hottest lookup of the search)
        self._best0: list = [_MISSING] * len(memo.groups)
        #: gid -> (cardinality, order-delivering candidates, Sort enforcers)
        self._ordered_info: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def best(self, gid: int, required: SortOrder = ()) -> _Best | None:
        """Cheapest plan for group ``gid`` delivering ``required`` order,
        or ``None`` when no operator combination can satisfy it."""
        if not required:
            best0 = self._best0
            cached = best0[gid]
            if cached is not _MISSING:
                if cached is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {gid}"
                    )
                return cached
            best0[gid] = _IN_PROGRESS
            result = self._best_unordered(gid)
            best0[gid] = result
            return result
        key = (gid, required)
        cache = self._cache
        cached = cache.get(key, _MISSING)
        if cached is not _MISSING:
            if cached is _IN_PROGRESS:
                raise OptimizerError(f"cycle detected while optimizing group {gid}")
            return cached
        cache[key] = _IN_PROGRESS
        result = self._best_ordered(gid, required)
        cache[key] = result
        return result

    # ------------------------------------------------------------------
    def _candidate(self, expr, op, cardinality: float, groups) -> tuple:
        """The per-expression candidate record: (op, children, delivered
        order, per-child requirements, local cost, local id)."""
        operator_cost = self.cost_model.operator_cost
        children = expr.children
        arity = len(children)
        if type(op).required_child_order is _NO_CHILD_ORDER:
            child_reqs = _EMPTY_REQS[arity]
        else:
            child_reqs = tuple(
                op.required_child_order(i) for i in range(arity)
            )
        if arity == 2:
            child_rows = (
                groups[children[0]].cardinality,
                groups[children[1]].cardinality,
            )
        elif arity == 1:
            child_rows = (groups[children[0]].cardinality,)
        else:
            child_rows = ()
        if type(op).delivered_order is _NO_DELIVERED_ORDER:
            delivered = ()
        else:
            delivered = op.delivered_order()
        local = operator_cost(op, cardinality, child_rows)
        return (op, children, delivered, child_reqs, local, expr.local_id)

    def _store_ordered_info(
        self, gid: int, group, cardinality: float, ordered, enforcers
    ) -> tuple:
        """Snapshot the order-state tables, stamped with the expression
        count so pruning-time mutation of the group is detected."""
        info = (len(group.exprs), cardinality, ordered, enforcers)
        self._ordered_info[gid] = info
        return info

    def _rebuild_ordered_info(self, gid: int, group, cardinality: float) -> tuple:
        """Re-collect the order-delivering candidates and enforcers from
        the group's *current* expressions (after pruning removed some)."""
        groups = self.memo.groups
        operator_cost = self.cost_model.operator_cost
        ordered: list[tuple] = []
        enforcers: list[tuple] = []
        for expr in group.exprs:
            if not expr.is_physical:
                continue
            op = expr.op
            if expr.is_enforcer:
                if isinstance(op, Sort):
                    enforcers.append(
                        (expr, operator_cost(op, cardinality, (cardinality,)))
                    )
                continue
            candidate = self._candidate(expr, op, cardinality, groups)
            if candidate[2]:
                ordered.append(candidate)
        return self._store_ordered_info(gid, group, cardinality, ordered, enforcers)

    # ------------------------------------------------------------------
    def _best_unordered(self, gid: int) -> _Best | None:
        """The order-free state, fused with candidate-table construction."""
        fault_point("bestplan.object", self)
        if self.scope is not None:
            self.scope.checkpoint("bestplan.object")
        group = self.memo.group(gid)
        cardinality = group.cardinality
        if cardinality is None:
            raise OptimizerError(
                f"group {gid} has no cardinality; run annotate_cardinalities first"
            )
        groups = self.memo.groups
        operator_cost = self.cost_model.operator_cost
        make_candidate = self._candidate
        cache_get = self._cache.get
        best0 = self._best0
        search = self.best
        ordered_candidates: list[tuple] = []
        enforcers: list[tuple] = []
        best_total = _INFINITY
        best_candidate: tuple | None = None

        for expr in group.exprs:
            if not expr.is_physical:
                continue
            op = expr.op
            if expr.is_enforcer:
                if isinstance(op, Sort):
                    enforcers.append(
                        (expr, operator_cost(op, cardinality, (cardinality,)))
                    )
                continue
            candidate = make_candidate(expr, op, cardinality, groups)
            _, children, delivered, child_reqs, local, _ = candidate
            if delivered:
                ordered_candidates.append(candidate)
            # The order-free state accepts every non-enforcer candidate.
            # Plans are not assembled during the scan — only the winning
            # candidate's plan is built, once, afterwards.
            total = local
            feasible = True
            for child_gid, child_req in zip(children, child_reqs):
                # Inline both cache hits: order-free child states live in
                # a gid-indexed array, ordered ones in the state dict.
                if child_req:
                    child_best = cache_get((child_gid, child_req), _MISSING)
                else:
                    child_best = best0[child_gid]
                if child_best is _MISSING:
                    child_best = search(child_gid, child_req)
                elif child_best is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {child_gid}"
                    )
                if child_best is None:
                    feasible = False
                    break
                total += child_best.cost
            if not feasible:
                continue
            if total < best_total:
                best_total = total
                best_candidate = (op, children, child_reqs, expr.local_id)

        self._store_ordered_info(
            gid, group, cardinality, ordered_candidates, enforcers
        )
        if best_candidate is None:
            return None
        return self._assemble(gid, cardinality, best_total, best_candidate)

    # ------------------------------------------------------------------
    def _best_ordered(self, gid: int, required: SortOrder) -> _Best | None:
        """A state with a sort requirement: only order-delivering
        candidates (plus the group's Sort enforcer) can satisfy it."""
        info = self._ordered_info.get(gid)
        if info is None:
            # Fill the candidate table (and the order-free state, which
            # the enforcer path consults anyway).
            self.best(gid, ())
            info = self._ordered_info[gid]
        group = self.memo.group(gid)
        if info[0] != len(group.exprs):
            # The group was mutated since the snapshot (cost-bound pruning
            # removes expressions in place): answer from live expressions,
            # matching the behavior of a from-scratch scan.
            info = self._rebuild_ordered_info(gid, group, info[1])
        _, cardinality, ordered_candidates, enforcers = info
        required_len = len(required)
        cache_get = self._cache.get
        best0 = self._best0
        search = self.best
        best_total = _INFINITY
        best_candidate: tuple | None = None

        for op, children, delivered, child_reqs, local, local_id in ordered_candidates:
            if delivered[:required_len] != required:
                continue
            total = local
            feasible = True
            for child_gid, child_req in zip(children, child_reqs):
                if child_req:
                    child_best = cache_get((child_gid, child_req), _MISSING)
                else:
                    child_best = best0[child_gid]
                if child_best is _MISSING:
                    child_best = search(child_gid, child_req)
                elif child_best is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {child_gid}"
                    )
                if child_best is None:
                    feasible = False
                    break
                total += child_best.cost
            if not feasible:
                continue
            if total < best_total:
                best_total = total
                best_candidate = (op, children, child_reqs, local_id)

        best: _Best | None = None
        if best_candidate is not None:
            best = self._assemble(gid, cardinality, best_total, best_candidate)

        for expr, local in enforcers:
            if not order_satisfies(expr.op.delivered_order(), required):
                continue
            inner = search(gid, ())
            if inner is not None:
                total = local + inner.cost
                if best is None or total < best.cost:
                    best = _Best(
                        cost=total,
                        plan=PlanNode(
                            op=expr.op,
                            children=(inner.plan,),
                            group_id=gid,
                            local_id=expr.local_id,
                            cardinality=cardinality,
                        ),
                    )
            break

        return best

    # ------------------------------------------------------------------
    def _assemble(
        self, gid: int, cardinality: float, total: float, candidate: tuple
    ) -> _Best:
        """Build the plan for a scan's winning candidate (children's best
        states are all cached by the time a winner is known)."""
        op, children, child_reqs, local_id = candidate
        plans = tuple(
            self.best(child_gid, child_req).plan
            for child_gid, child_req in zip(children, child_reqs)
        )
        return _Best(
            cost=total,
            plan=PlanNode(
                op=op,
                children=plans,
                group_id=gid,
                local_id=local_id,
                cardinality=cardinality,
            ),
        )


def find_best_plan(
    memo: Memo, cost_model: CostModel, required_order: SortOrder = (), scope=None
) -> tuple[PlanNode, float]:
    """The optimizer's chosen plan and its cost."""
    search = BestPlanSearch(memo, cost_model, scope=scope)
    if memo.root_group_id is None:
        raise OptimizerError("memo has no root group")
    best = search.best(memo.root_group_id, required_order)
    if best is None:
        raise OptimizerError(
            "no physical plan satisfies the root requirement "
            "(are implementations/enforcers enabled?)"
        )
    return best.plan, best.cost


# ======================================================================
# the layered columnar DP
# ======================================================================
def _interval_ends(np, sorted_mat, lengths, pad_width, ranks):
    """Backend-dispatched prefix-interval ends for the required ranks.

    Native backend: the jitted full-table sweep, indexed at ``ranks``.
    Otherwise the selective masked-word compare when the required kids
    span few distinct lengths (each distinct length costs whole-array
    word compares), falling back to the full LCP sweep when the
    requirement set is dense — on clique-style queries nearly every kid
    in the table is required, at every length, and one ``(K, width)``
    byte sweep beats per-length word passes."""
    if selected_backend() == "native" and native_available():  # pragma: no cover
        full = _native.prefix_intervals(np, sorted_mat, lengths, pad_width)
        return full[ranks]
    if len(ranks):
        lens = np.asarray(lengths, np.int64)
        distinct = np.unique(lens[ranks])
        words = (pad_width + 7) // 8
        if len(distinct) * words * 8 > pad_width + len(distinct):
            return prefix_intervals(np, sorted_mat, lengths, pad_width)[ranks]
    return prefix_interval_ends(np, sorted_mat, lengths, pad_width, ranks)


#: placeholder for state winners the vectorized layers never resolved —
#: assembly recomputes them lazily, on the winning path only
_UNRESOLVED = object()


class ColumnarBestPlanSearch:
    """Layered best-plan DP over the struct-of-arrays physical store.

    The recursive object search (:class:`BestPlanSearch`) and this sweep
    compute the same function — the cheapest plan per ``(group, required
    sort order)`` state — but the columnar store makes every state's
    requirement known *up front* (the requirement set collected during
    batched implementation is exactly the set of child orders any
    candidate ever demands, plus the root ORDER BY).  So instead of
    recursing over ``GroupExpr`` objects, the search sweeps groups
    bottom-up in layers — leaves, then join groups by relation-set
    popcount (children of a join strictly precede it), then the unary
    tower — and resolves each group's order-free optimum and all its
    ordered states from the arrays.  Join layers are vectorized with
    numpy when available (cost formulas and candidate minima as array
    expressions over the whole layer); the pure-Python fallback walks the
    same arrays row by row.

    Tie-breaking replicates the object search bit for bit: candidates
    are considered in insertion (local-id) order with strict-``<``
    improvement, ordered states consult only order-delivering candidates
    plus the group's first satisfying Sort enforcer, and per-candidate
    totals are accumulated in the same ``local + child0 + child1``
    association — so the chosen plan, its local ids, and its cost are
    byte-identical to the object path's (asserted by the columnar
    property suite).
    """

    def __init__(
        self,
        store: ColumnarPhysicalStore,
        cost_model: CostModel,
        scope=None,
        prune_dominated: bool = True,
    ):
        self.store = store
        self.memo = store.memo
        self.cost_model = cost_model
        self.scope = scope
        self.prune_dominated = prune_dominated
        groups = self.memo.groups
        G = len(groups)
        self._card = card = [0.0] * G
        for group in groups:
            if group.cardinality is None:
                raise OptimizerError(
                    f"group {group.gid} has no cardinality; "
                    "run annotate_cardinalities first"
                )
            card[group.gid] = group.cardinality

        self._best0 = [_INFINITY] * G
        self._best0_row = [-1] * G
        self._enforcers = store.config.enable_sort_enforcers

        #: state table: one slot per collected (group, required kid).
        #: On the vector backend states live in int64 gid/kid columns
        #: (lookup = binary search over packed codes); the pure backend
        #: keeps the historical dict index.
        np = self._np = active_numpy()
        S = store.requirement_count()
        if np is not None:
            rg, rk = store.requirement_arrays(np)
            self._req_gid_arr = rg
            self._req_kid_arr = rk
            codes = (rg << np.int64(32)) | rk
            self._state_order = np.argsort(codes)
            self._sorted_state_codes = codes[self._state_order]
            self._state_cost = np.full(S, _INFINITY, dtype=np.float64)
            self._state_index = None
            self._reqs_by_gid = None
        else:
            self._state_index = {
                state: sid for sid, state in enumerate(store.requirements)
            }
            self._state_cost = [_INFINITY] * S
            self._reqs_by_gid = {}
            for sid, (gid, kid) in enumerate(store.requirements):
                self._reqs_by_gid.setdefault(gid, []).append((sid, kid))
        #: winner per resolved state: row index, or ("sort", kid), or
        #: None (infeasible).  Sparse: the vectorized layers resolve
        #: costs for every state but winners only lazily at assembly.
        self._state_winner: dict = {}
        self.stats = {
            "states": S,
            "pruned_empty": 0,
            "pruned_dedup": 0,
            "pruned": 0,
        }

        #: group layers: leaves and towers run scalar; join groups run
        #: per popcount layer (vectorized when numpy is present)
        self._leaf_gids: list[int] = []
        self._tower_gids: list[int] = []
        join_layers: dict[int, list[int]] = {}
        for group in groups:
            if group.key[0] == "rels":
                if group.mask & (group.mask - 1):
                    join_layers.setdefault(group.mask.bit_count(), []).append(
                        group.gid
                    )
                else:
                    self._leaf_gids.append(group.gid)
            else:
                self._tower_gids.append(group.gid)
        self._join_layers = [join_layers[pc] for pc in sorted(join_layers)]

        #: (sid, kid) lists for every scalar-processed group, collected
        #: in one pass over the requirement columns (the vector backend
        #: has no per-gid dict; a scan per leaf/tower group would cost
        #: O(S) each).  Join groups ride along only when the store is
        #: empty and the whole sweep falls back to scalar.
        if np is not None:
            scalar_gids = list(self._leaf_gids) + list(self._tower_gids)
            if not store.row_count:
                for layer in self._join_layers:
                    scalar_gids.extend(layer)
            is_scalar = np.zeros(G, dtype=bool)
            if scalar_gids:
                is_scalar[np.asarray(scalar_gids, dtype=np.int64)] = True
            reqs: dict[int, list] = {}
            if S:
                for s in np.flatnonzero(is_scalar[rg]).tolist():
                    reqs.setdefault(int(rg[s]), []).append((s, int(rk[s])))
            self._scalar_reqs = reqs
        else:
            self._scalar_reqs = None

    # ------------------------------------------------------------------
    def run(self) -> "ColumnarBestPlanSearch":
        np = self._np
        checkpoint = self.scope.checkpoint if self.scope is not None else None
        if checkpoint is not None:
            checkpoint("bestplan.layer", len(self._leaf_gids))
        for gid in self._leaf_gids:
            self._process_group_scalar(gid)
        if np is not None and self.store.row_count:
            self._run_join_layers_numpy(np)
        else:
            for layer in self._join_layers:
                fault_point("bestplan.layer", self)
                if checkpoint is not None:
                    checkpoint("bestplan.layer", len(layer))
                for gid in layer:
                    self._process_group_scalar(gid)
        if checkpoint is not None:
            checkpoint("bestplan.layer", len(self._tower_gids))
        for gid in self._tower_gids:
            self._process_group_scalar(gid)
        self.stats["pruned"] = (
            self.stats["pruned_empty"] + self.stats["pruned_dedup"]
        )
        return self

    # ------------------------------------------------------------------
    # state lookup (dict on the pure backend, binary search on numpy)
    # ------------------------------------------------------------------
    def _sid_of(self, gid: int, kid: int) -> int:
        index = self._state_index
        if index is not None:
            return index[(gid, kid)]
        code = (gid << 32) | kid
        i = int(self._sorted_state_codes.searchsorted(code))
        if i >= len(self._sorted_state_codes) or int(
            self._sorted_state_codes[i]
        ) != code:
            raise KeyError((gid, kid))
        return int(self._state_order[i])

    def _group_reqs(self, gid: int):
        """One group's ``(sid, required kid)`` states, or ``None``."""
        if self._reqs_by_gid is not None:
            return self._reqs_by_gid.get(gid)
        return self._scalar_reqs.get(gid)

    # ------------------------------------------------------------------
    # shared scalar machinery (leaves, towers, and the no-numpy fallback)
    # ------------------------------------------------------------------
    def _local_cost(self, row: int) -> float:
        """One row's operator-local cost — the same formulas (and the
        same floating-point evaluation order) as ``CostModel``."""
        store = self.store
        tag = store.tag[row]
        card = self._card
        p = self.cost_model.params
        if tag == TAG_NLJ:
            outer = card[store.c0[row]]
            inner = card[store.c1[row]]
            return outer * p.nlj_outer_row + outer * inner * p.nlj_pair
        if tag == TAG_HASH:
            probe = card[store.c0[row]]
            build = card[store.c1[row]]
            out = card[store.gid[row]]
            return (
                build * p.hash_build_row
                + probe * p.hash_probe_row
                + out * p.join_output_row
            )
        if tag == TAG_MERGE:
            left = card[store.c0[row]]
            right = card[store.c1[row]]
            out = card[store.gid[row]]
            return (left + right) * p.merge_row + out * p.join_output_row
        # Scans, unary operators and index-lookup joins price through the
        # cost model itself (their formulas need catalog/operator state).
        op = store.row_op(row)
        out = card[store.gid[row]]
        if tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN):
            child_rows: tuple = ()
        else:
            child_rows = (card[store.c0[row]],)
        return self.cost_model.operator_cost(op, out, child_rows)

    def _sort_local(self, gid: int) -> float:
        rows = self._card[gid]
        return rows * math.log2(rows + 2.0) * self.cost_model.params.sort_row_log

    def _row_total(self, row: int) -> float:
        """Local cost plus the children's best state costs, accumulated
        left to right — the object search's exact float association."""
        store = self.store
        tag = store.tag[row]
        total = self._local_cost(row)
        if tag in (TAG_NLJ, TAG_HASH):
            total += self._best0[store.c0[row]]
            total += self._best0[store.c1[row]]
        elif tag == TAG_MERGE:
            cost = self._state_cost
            total += cost[self._sid_of(store.c0[row], store.a[row])]
            total += cost[self._sid_of(store.c1[row], store.b[row])]
        elif tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN):
            pass
        elif tag == TAG_STREAMAGG and store.b[row] >= 0:
            total += self._state_cost[
                self._sid_of(store.c0[row], store.b[row])
            ]
        else:
            total += self._best0[store.c0[row]]
        return total

    def _delivered_kid(self, row: int) -> int:
        tag = self.store.tag[row]
        if tag == TAG_MERGE:
            return self.store.a[row]
        if tag in (TAG_INDEX_SCAN, TAG_STREAMAGG):
            return self.store.b[row]
        return -1

    def _process_group_scalar(self, gid: int) -> None:
        store = self.store
        kid_bytes = store.kid_bytes
        start, end = store.group_rows(gid)
        best = _INFINITY
        best_row = -1
        ordered: list[tuple[bytes, int, float]] = []
        for row in range(start, end):
            total = self._row_total(row)
            dkid = self._delivered_kid(row)
            if dkid >= 0:
                # Resolve the delivered order to bytes once per row, not
                # once per (requirement, row) pair below.
                ordered.append((kid_bytes[dkid], row, total))
            if total < best:
                best = total
                best_row = row
        self._best0[gid] = best
        self._best0_row[gid] = best_row
        reqs = self._group_reqs(gid)
        if reqs:
            for sid, rkid in reqs:
                rb = kid_bytes[rkid]
                rbest = _INFINITY
                rrow = -1
                for dbytes, row, total in ordered:
                    if dbytes.startswith(rb) and total < rbest:
                        rbest = total
                        rrow = row
                self._resolve_state(gid, sid, rkid, rbest, rrow)

    def _resolve_state(
        self, gid: int, sid: int, rkid: int, cand_best: float, cand_row: int
    ) -> None:
        """Finish one ordered state: compare the best order-delivering
        candidate against the group's Sort enforcer.

        A state exists only for collected requirements, and the enforcer
        pass creates one Sort per requirement — so whenever the group has
        sorts at all, a satisfying one exists (at least the requirement's
        own), and every sort of a group prices identically (sort cost
        depends only on group cardinality).  Which satisfying sort wins
        (the first, as in the object search) only matters for plan
        identity, so it is resolved lazily during assembly.
        """
        winner = cand_row if cand_row >= 0 else None
        best = cand_best
        if self._enforcers:
            inner = self._best0[gid]
            if inner < _INFINITY:
                total = self._sort_local(gid) + inner
                if winner is None or total < best:
                    best = total
                    winner = ("sort", rkid)
        self._state_cost[sid] = best
        self._state_winner[sid] = winner

    # ------------------------------------------------------------------
    # the vectorized join layers
    # ------------------------------------------------------------------
    def _kid_rank_tables(self, np):
        """Lexicographic kid ranks over the store's key table:
        ``(lexrank, sorted_mat, sorted_lengths, pad_width)`` with
        ``lexrank[kid]`` the kid's byte-lex rank and ``sorted_mat`` the
        0-padded kid matrix in rank order — the kids satisfying
        (extending) a required kid are exactly the rank interval
        ``[lexrank[rkid], end)`` with ``end`` from
        :func:`_interval_ends` (evaluated for required ranks only).

        Built from the key table's backing directly: the preloaded
        matrix (already 0-padded) is adopted wholesale; overflow kids —
        a handful of GROUP BY / ORDER BY sequences, or everything on a
        scalar-built store — are appended row by row."""
        keys = self.store._keys
        pre = keys._preloaded
        overflow = keys._overflow
        K = pre + len(overflow)
        if K == 0:
            return (
                np.zeros(0, np.int64),
                np.zeros((0, 1), np.uint8),
                np.zeros(0, np.int64),
                1,
            )
        width = keys._width
        if pre and len(overflow) <= 32 and all(
            len(s) <= width for s in overflow
        ):
            # Vector-built store: the preloaded block is already
            # lex-sorted (kid id == lex rank), so the handful of
            # overflow kids (GROUP BY / ORDER BY tails) merge in by
            # binary insertion — no 500k-row re-sort.
            mat = np.frombuffer(keys._mat_flat, np.uint8).reshape(pre, width)
            pre_len = np.asarray(keys._lengths, np.int64)
            if not overflow:
                rank = np.arange(pre, dtype=np.int64)
                return rank, mat, pre_len, width
            flat = keys._mat_flat
            over = sorted(
                range(len(overflow)),
                key=lambda i: overflow[i].ljust(width, b"\x00"),
            )
            ins = []
            for i in over:
                probe = overflow[i].ljust(width, b"\x00")
                lo, hi = 0, pre
                while lo < hi:
                    mid = (lo + hi) // 2
                    if flat[mid * width : (mid + 1) * width] < probe:
                        lo = mid + 1
                    else:
                        hi = mid
                ins.append(lo)
            ins_arr = np.asarray(ins, np.int64)
            over_mat = np.zeros((len(over), width), np.uint8)
            over_len = np.zeros(len(over), np.int64)
            for j, i in enumerate(over):
                seq = overflow[i]
                if seq:
                    over_mat[j, : len(seq)] = np.frombuffer(seq, np.uint8)
                over_len[j] = len(seq)
            merged = np.insert(mat, ins_arr, over_mat, axis=0)
            merged_len = np.insert(pre_len, ins_arr, over_len)
            rank = np.empty(K, np.int64)
            rank[:pre] = np.arange(pre) + np.searchsorted(
                ins_arr, np.arange(pre), side="right"
            )
            for j, i in enumerate(over):
                rank[pre + i] = int(ins_arr[j]) + j
            return rank, merged, merged_len, width
        width = max(width, max((len(s) for s in overflow), default=0), 1)
        mat = np.zeros((K, width), np.uint8)
        lengths = np.zeros(K, np.int64)
        if pre:
            mat[:pre, : keys._width] = np.frombuffer(
                keys._mat_flat, np.uint8
            ).reshape(pre, keys._width)
            lengths[:pre] = np.asarray(keys._lengths, np.int64)
        for i, seq in enumerate(overflow):
            if seq:
                mat[pre + i, : len(seq)] = np.frombuffer(seq, np.uint8)
            lengths[pre + i] = len(seq)
        order, rank = lex_rank_rows(np, mat)
        return rank, mat[order], lengths[order], width

    def _run_join_layers_numpy(self, np) -> None:
        store = self.store
        intc = np.intc
        tag = np.frombuffer(store.tag, dtype=intc)
        gid_ = np.frombuffer(store.gid, dtype=intc)
        c0 = np.frombuffer(store.c0, dtype=intc)
        c1 = np.frombuffer(store.c1, dtype=intc)
        a = np.frombuffer(store.a, dtype=intc)
        b = np.frombuffer(store.b, dtype=intc)
        card = np.asarray(self._card, dtype=np.float64)
        p = self.cost_model.params
        inf = _INFINITY

        # Operator-local costs, whole memo at once.  Formula shape and
        # term order match CostModel exactly (same IEEE rounding).
        local = np.zeros(len(tag), dtype=np.float64)
        m = tag == TAG_NLJ
        outer = card[c0[m]]
        inner = card[c1[m]]
        local[m] = outer * p.nlj_outer_row + outer * inner * p.nlj_pair
        m = tag == TAG_HASH
        local[m] = (
            card[c1[m]] * p.hash_build_row
            + card[c0[m]] * p.hash_probe_row
            + card[gid_[m]] * p.join_output_row
        )
        m = tag == TAG_MERGE
        local[m] = (card[c0[m]] + card[c1[m]]) * p.merge_row + card[
            gid_[m]
        ] * p.join_output_row
        for row in np.nonzero(tag == TAG_INLJ)[0]:
            local[row] = self._local_cost(int(row))

        # Merge rows' child states, resolved to dense state ids against
        # the store's requirement columns (no python tuple walk).
        S = store.requirement_count()
        state_cost = self._state_cost
        mpos = np.nonzero(tag == TAG_MERGE)[0]
        if S and mpos.size:
            ms0 = store._merge_sid0
            if ms0 is not None and len(ms0) == mpos.size:
                # Fused handoff from the vectorized build: merge rows
                # appear one per keyed pair in pair order, so the
                # build's state-id stream aligns with row order.
                sid0 = ms0
                sid1 = store._merge_sid1
            else:
                order = self._state_order
                sorted_codes = self._sorted_state_codes

                def to_sid(gids, kids):
                    codes = (gids.astype(np.int64) << 32) | kids.astype(
                        np.int64
                    )
                    return order[sorted_codes.searchsorted(codes)]

                sid0 = to_sid(c0[mpos], a[mpos])
                sid1 = to_sid(c1[mpos], b[mpos])
            sid0_row = np.full(len(tag), -1, dtype=np.int64)
            sid1_row = np.full(len(tag), -1, dtype=np.int64)
            sid0_row[mpos] = sid0
            sid1_row[mpos] = sid1
        else:
            sid0_row = sid1_row = np.full(len(tag), -1, dtype=np.int64)

        # Requirement satisfaction as lexicographic kid-rank intervals:
        # delivered satisfies required iff its bytes extend the required
        # bytes, i.e. its kid's lex rank falls in the required kid's
        # prefix interval — computed once, for every state at once.
        req_gid_arr = self._req_gid_arr
        req_kid_arr = self._req_kid_arr
        lexrank, kid_mat, kid_len, kid_width = self._kid_rank_tables(np)
        if S:
            req_lo = lexrank[req_kid_arr]
            req_hi = _interval_ends(np, kid_mat, kid_len, kid_width, req_lo)
        K1 = len(lexrank) + 1

        # math.log2 per group (not np.log2: last-ulp identity with the
        # scalar enforcer formula), vectorized lookup per state.
        if self._enforcers:
            sort_local_g = np.fromiter(
                (self._sort_local(g) for g in range(len(card))),
                dtype=np.float64,
                count=len(card),
            )

        best0 = np.full(len(card), inf, dtype=np.float64)
        for gid in self._leaf_gids:  # already processed scalar
            best0[gid] = self._best0[gid]

        # Layer membership per state, so each layer resolves all its
        # ordered states in one vectorized pass.
        layer_of_gid = np.full(len(card), -1, dtype=np.int64)
        for li, layer in enumerate(self._join_layers):
            layer_of_gid[np.asarray(layer, dtype=np.int64)] = li
        state_layer = (
            layer_of_gid[req_gid_arr] if S else np.zeros(0, np.int64)
        )

        group_start = store.group_start
        prune = self.prune_dominated
        stats = self.stats
        checkpoint = self.scope.checkpoint if self.scope is not None else None
        for li, layer in enumerate(self._join_layers):
            fault_point("bestplan.layer", self)
            if checkpoint is not None:
                checkpoint("bestplan.layer", len(layer))
            segments = [
                (gid, group_start[gid], group_start[gid + 1])
                for gid in layer
                if group_start[gid + 1] > group_start[gid]
            ]
            if not segments:
                continue
            rows = np.concatenate(
                [np.arange(s, e, dtype=np.int64) for _g, s, e in segments]
            )
            t = tag[rows]
            tot = local[rows].copy()
            m = (t == TAG_NLJ) | (t == TAG_HASH)
            idx = rows[m]
            tot[m] += best0[c0[idx]]
            tot[m] += best0[c1[idx]]
            m = t == TAG_MERGE
            idx = rows[m]
            tot[m] += state_cost[sid0_row[idx]]
            tot[m] += state_cost[sid1_row[idx]]
            m = t == TAG_INLJ
            if m.any():
                tot[m] += best0[c0[rows[m]]]

            seg_lens = np.array([e - s for _g, s, e in segments])
            seg_starts = np.zeros(len(segments), dtype=np.int64)
            np.cumsum(seg_lens[:-1], out=seg_starts[1:])
            mins = np.minimum.reduceat(tot, seg_starts)
            pos = np.arange(len(tot), dtype=np.int64)
            cand = np.where(tot == np.repeat(mins, seg_lens), pos, len(tot))
            winners = np.minimum.reduceat(cand, seg_starts)
            layer_gids = np.array([g for g, _s, _e in segments])
            best0[layer_gids] = mins
            for i, (gid, s, e) in enumerate(segments):
                seg_min = mins[i]
                if seg_min < inf:
                    self._best0[gid] = float(seg_min)
                    self._best0_row[gid] = int(rows[winners[i]])

            # All of this layer's ordered states at once.  Per state the
            # satisfying candidates occupy one contiguous run of the
            # layer's merge rows sorted by (group, delivered lex rank);
            # two searchsorted calls bound the run and a segmented range
            # minimum resolves it.  Winners stay lazy: assembly
            # recomputes the winning row for the handful of states on
            # the chosen plan's path.
            lsids = np.nonzero(state_layer == li)[0]
            if not lsids.size:
                continue
            mmask = t == TAG_MERGE
            mrows = rows[mmask]
            sgid = req_gid_arr[lsids]
            if mrows.size:
                ckey = gid_[mrows].astype(np.int64) * K1 + lexrank[a[mrows]]
                lo_key = sgid * K1 + req_lo[lsids]
                hi_key = sgid * K1 + req_hi[lsids]
                if len(card) * K1 < 1 << 32:
                    # (gid, lexrank) packs into 32 bits for every space
                    # the EdgeCatalog admits; uint32 quicksort runs
                    # ~1.6x faster than int64.
                    ckey = ckey.astype(np.uint32)
                    lo_key = lo_key.astype(np.uint32)
                    hi_key = hi_key.astype(np.uint32)
                corder = np.argsort(ckey)
                sorted_ckey = ckey[corder]
                sorted_tot = tot[mmask][corder]
                i0 = sorted_ckey.searchsorted(lo_key)
                i1 = sorted_ckey.searchsorted(hi_key)
            else:
                sorted_tot = np.zeros(0, dtype=np.float64)
                i0 = i1 = np.zeros(len(lsids), dtype=np.int64)
            if prune:
                # Dominated-state pruning: states with no satisfying
                # candidate resolve straight to the enforcer bound, and
                # states sharing one candidate interval share its
                # minimum — dedup before the range scan.
                M = len(sorted_tot) + 1
                packed = i0 * M + i1
                uniq, inv = np.unique(packed, return_inverse=True)
                cand_min = range_min_pairs(
                    np, sorted_tot, uniq // M, uniq % M
                )[inv]
                stats["pruned_empty"] += int((i0 >= i1).sum())
                stats["pruned_dedup"] += int(len(packed) - len(uniq))
            else:
                cand_min = range_min_pairs(np, sorted_tot, i0, i1)
            if self._enforcers:
                inner_best = best0[sgid]
                bound = sort_local_g[sgid] + inner_best
                take = (inner_best < inf) & (
                    (cand_min == inf) | (bound < cand_min)
                )
                resolved = np.where(take, bound, cand_min)
            else:
                resolved = cand_min
            state_cost[lsids] = resolved

    # ------------------------------------------------------------------
    # plan assembly (winning path only)
    # ------------------------------------------------------------------
    def best_plan(self, required_order: SortOrder = ()) -> tuple[PlanNode, float]:
        memo = self.memo
        if memo.root_group_id is None:
            raise OptimizerError("memo has no root group")
        root = memo.root_group_id
        required = tuple(required_order)
        if required:
            if required != self.store.root_order:
                raise OptimizerError(
                    "columnar best-plan search was built for root order "
                    f"{self.store.root_order!r}, not {required!r}"
                )
            sid = self._sid_of(root, self.store.root_kid)
            cost = self._state_cost[sid]
            if cost >= _INFINITY:
                raise OptimizerError(
                    "no physical plan satisfies the root requirement "
                    "(are implementations/enforcers enabled?)"
                )
            return self._assemble(root, self.store.root_kid), float(cost)
        cost = self._best0[root]
        if cost >= _INFINITY:
            raise OptimizerError(
                "no physical plan satisfies the root requirement "
                "(are implementations/enforcers enabled?)"
            )
        return self._assemble(root, None), float(cost)

    def _lazy_winner(self, gid: int, sid: int, rkid: int):
        """Recompute one state's winner from the resolved DP tables —
        the vectorized layers only record state *costs*; the winning
        candidate row (or enforcer) is re-derived here with the scalar
        pass's exact comparison order, for winning-path states only."""
        store = self.store
        kid_bytes = store.kid_bytes
        rb = kid_bytes[rkid]
        start, end = store.group_rows(gid)
        rbest = _INFINITY
        rrow = -1
        for row in range(start, end):
            dkid = self._delivered_kid(row)
            if dkid >= 0 and kid_bytes[dkid].startswith(rb):
                total = self._row_total(row)
                if total < rbest:
                    rbest = total
                    rrow = row
        winner = rrow if rrow >= 0 else None
        if self._enforcers:
            inner = self._best0[gid]
            if inner < _INFINITY:
                total = self._sort_local(gid) + inner
                if winner is None or total < rbest:
                    winner = ("sort", rkid)
        self._state_winner[sid] = winner
        return winner

    def _assemble(self, gid: int, rkid: int | None) -> PlanNode:
        store = self.store
        if rkid is None:
            row = self._best0_row[gid]
            if row < 0:  # pragma: no cover - guarded by cost checks
                raise OptimizerError(f"group {gid} has no feasible plan")
            return self._plan_from_row(row)
        sid = self._sid_of(gid, rkid)
        winner = self._state_winner.get(sid, _UNRESOLVED)
        if winner is _UNRESOLVED:
            winner = self._lazy_winner(gid, sid, rkid)
        if winner is None:  # pragma: no cover - guarded by cost checks
            raise OptimizerError(f"group {gid} has no feasible ordered plan")
        if isinstance(winner, tuple):
            _tag, winner_rkid = winner
            # First satisfying sort in insertion order, as the object
            # search picks — resolved here, on the winning path only.
            rb = store.kid_bytes[winner_rkid]
            kid_bytes = store.kid_bytes
            position, skid = next(
                (p, k)
                for p, k in enumerate(store.group_sorts(gid))
                if kid_bytes[k].startswith(rb)
            )
            inner = self._assemble(gid, None)
            return PlanNode(
                op=Sort(store.columns_of(skid)),
                children=(inner,),
                group_id=gid,
                local_id=store.sort_local_id(gid, position),
                cardinality=self._card[gid],
            )
        return self._plan_from_row(winner)

    def _plan_from_row(self, row: int) -> PlanNode:
        store = self.store
        tag = store.tag[row]
        gid = store.gid[row]
        if tag == TAG_MERGE:
            slots = (
                (store.c0[row], store.a[row]),
                (store.c1[row], store.b[row]),
            )
        elif tag in (TAG_NLJ, TAG_HASH):
            slots = ((store.c0[row], None), (store.c1[row], None))
        elif tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN):
            slots = ()
        elif tag == TAG_STREAMAGG and store.b[row] >= 0:
            slots = ((store.c0[row], store.b[row]),)
        else:
            slots = ((store.c0[row], None),)
        children = tuple(self._assemble(cg, kid) for cg, kid in slots)
        return PlanNode(
            op=store.row_op(row),
            children=children,
            group_id=gid,
            local_id=store.row_local_id(row),
            cardinality=self._card[gid],
        )


def find_best_plan_columnar(
    store: ColumnarPhysicalStore,
    cost_model: CostModel,
    required_order: SortOrder = (),
    scope=None,
    prune_dominated: bool = True,
) -> tuple[PlanNode, float]:
    """The optimizer's chosen plan from a columnar memo — same plan, same
    cost as :func:`find_best_plan` over the materialized memo."""
    search = ColumnarBestPlanSearch(
        store, cost_model, scope=scope, prune_dominated=prune_dominated
    )
    return search.run().best_plan(required_order)
