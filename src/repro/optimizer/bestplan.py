"""Best-plan extraction: dynamic programming over (group, required order).

"The optimal query plan is the one rooted in the most cost effective
operator in the root group.  To extract this plan, we follow the
references to the children's groups and select the most cost effective
operator of each group, observing compatibility of physical properties."
(Section 2.)

The DP state is a group plus the sort order required of it.  For each
state we take the cheapest of (a) any non-enforcer operator whose
delivered order satisfies the requirement, with children optimized under
the operator's own child requirements, and (b) when an order is required,
the group's Sort enforcer over the group optimized order-free.  Because
operator costs depend only on group cardinalities, this DP finds the true
global minimum over the entire plan space — a property the test suite
checks by exhaustive enumeration on small queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.physical import Sort
from repro.algebra.properties import SortOrder, order_satisfies
from repro.errors import OptimizerError
from repro.memo.memo import Memo
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import PlanNode

__all__ = ["BestPlanSearch", "find_best_plan"]

_IN_PROGRESS = object()


@dataclass
class _Best:
    cost: float
    plan: PlanNode


class BestPlanSearch:
    """Memoized best-plan search over one memo."""

    def __init__(self, memo: Memo, cost_model: CostModel):
        self.memo = memo
        self.cost_model = cost_model
        self._cache: dict[tuple[int, SortOrder], _Best | None | object] = {}

    # ------------------------------------------------------------------
    def best(self, gid: int, required: SortOrder = ()) -> _Best | None:
        """Cheapest plan for group ``gid`` delivering ``required`` order,
        or ``None`` when no operator combination can satisfy it."""
        key = (gid, required)
        if key in self._cache:
            value = self._cache[key]
            if value is _IN_PROGRESS:
                raise OptimizerError(f"cycle detected while optimizing group {gid}")
            return value
        self._cache[key] = _IN_PROGRESS

        group = self.memo.group(gid)
        if group.cardinality is None:
            raise OptimizerError(
                f"group {gid} has no cardinality; run annotate_cardinalities first"
            )
        best: _Best | None = None

        for expr in group.physical_exprs():
            if expr.is_enforcer:
                continue
            if not order_satisfies(expr.op.delivered_order(), required):
                continue
            total = 0.0
            children: list[PlanNode] = []
            feasible = True
            for child_pos, child_gid in enumerate(expr.children):
                child_best = self.best(
                    child_gid, expr.op.required_child_order(child_pos)
                )
                if child_best is None:
                    feasible = False
                    break
                total += child_best.cost
                children.append(child_best.plan)
            if not feasible:
                continue
            child_rows = tuple(
                self.memo.group(cgid).cardinality for cgid in expr.children
            )
            total += self.cost_model.operator_cost(
                expr.op, group.cardinality, child_rows
            )
            if best is None or total < best.cost:
                best = _Best(
                    cost=total,
                    plan=PlanNode(
                        op=expr.op,
                        children=tuple(children),
                        group_id=gid,
                        local_id=expr.local_id,
                        cardinality=group.cardinality,
                    ),
                )

        if required:
            enforcer = self._find_enforcer(gid, required)
            if enforcer is not None:
                inner = self.best(gid, ())
                if inner is not None:
                    local = self.cost_model.operator_cost(
                        enforcer.op, group.cardinality, (group.cardinality,)
                    )
                    total = local + inner.cost
                    if best is None or total < best.cost:
                        best = _Best(
                            cost=total,
                            plan=PlanNode(
                                op=enforcer.op,
                                children=(inner.plan,),
                                group_id=gid,
                                local_id=enforcer.local_id,
                                cardinality=group.cardinality,
                            ),
                        )

        self._cache[key] = best
        return best

    # ------------------------------------------------------------------
    def _find_enforcer(self, gid: int, required: SortOrder):
        for expr in self.memo.group(gid).physical_exprs():
            if expr.is_enforcer and isinstance(expr.op, Sort):
                if order_satisfies(expr.op.delivered_order(), required):
                    return expr
        return None


def find_best_plan(
    memo: Memo, cost_model: CostModel, required_order: SortOrder = ()
) -> tuple[PlanNode, float]:
    """The optimizer's chosen plan and its cost."""
    search = BestPlanSearch(memo, cost_model)
    if memo.root_group_id is None:
        raise OptimizerError("memo has no root group")
    best = search.best(memo.root_group_id, required_order)
    if best is None:
        raise OptimizerError(
            "no physical plan satisfies the root requirement "
            "(are implementations/enforcers enabled?)"
        )
    return best.plan, best.cost
