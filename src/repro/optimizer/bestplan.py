"""Best-plan extraction: dynamic programming over (group, required order).

"The optimal query plan is the one rooted in the most cost effective
operator in the root group.  To extract this plan, we follow the
references to the children's groups and select the most cost effective
operator of each group, observing compatibility of physical properties."
(Section 2.)

The DP state is a group plus the sort order required of it.  For each
state we take the cheapest of (a) any non-enforcer operator whose
delivered order satisfies the requirement, with children optimized under
the operator's own child requirements, and (b) when an order is required,
the group's Sort enforcer over the group optimized order-free.  Because
operator costs depend only on group cardinalities, this DP finds the true
global minimum over the entire plan space — a property the test suite
checks by exhaustive enumeration on small queries.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left
from dataclasses import dataclass

from repro.algebra.physical import PhysicalOperator, Sort
from repro.algebra.properties import SortOrder, order_satisfies
from repro.errors import OptimizerError
from repro.memo.columnar import (
    TAG_HASH,
    TAG_INDEX_SCAN,
    TAG_INLJ,
    TAG_MERGE,
    TAG_NLJ,
    TAG_STREAMAGG,
    TAG_TABLE_SCAN,
    ColumnarPhysicalStore,
)
from repro.memo.memo import Memo
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import PlanNode
from repro.resilience.faults import fault_point

__all__ = [
    "BestPlanSearch",
    "ColumnarBestPlanSearch",
    "find_best_plan",
    "find_best_plan_columnar",
]

_IN_PROGRESS = object()


@dataclass
class _Best:
    cost: float
    plan: PlanNode


_MISSING = object()
_INFINITY = float("inf")

#: trivial per-child requirements by arity, for operators inheriting the
#: base class's ``required_child_order``
_EMPTY_REQS: tuple[tuple, ...] = ((), ((),), ((), ()), ((), (), ()))

_NO_CHILD_ORDER = PhysicalOperator.required_child_order
_NO_DELIVERED_ORDER = PhysicalOperator.delivered_order


class BestPlanSearch:
    """Memoized best-plan search over one memo.

    States are (group, required sort order).  The order-free state — the
    overwhelmingly common one — is computed in a single fused pass over
    the group's physical expressions; the same pass records the few
    order-delivering candidates (merge joins, index scans, ...) and Sort
    enforcers, which is all that ordered states ever need to scan.
    Operator-local costs are computed exactly once per expression.
    """

    def __init__(self, memo: Memo, cost_model: CostModel, scope=None):
        self.memo = memo
        self.cost_model = cost_model
        self.scope = scope
        #: ordered states only; the order-free state lives in ``_best0``
        self._cache: dict[tuple[int, SortOrder], _Best | None | object] = {}
        #: order-free state per gid, indexed directly (no tuple keys on
        #: the hottest lookup of the search)
        self._best0: list = [_MISSING] * len(memo.groups)
        #: gid -> (cardinality, order-delivering candidates, Sort enforcers)
        self._ordered_info: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def best(self, gid: int, required: SortOrder = ()) -> _Best | None:
        """Cheapest plan for group ``gid`` delivering ``required`` order,
        or ``None`` when no operator combination can satisfy it."""
        if not required:
            best0 = self._best0
            cached = best0[gid]
            if cached is not _MISSING:
                if cached is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {gid}"
                    )
                return cached
            best0[gid] = _IN_PROGRESS
            result = self._best_unordered(gid)
            best0[gid] = result
            return result
        key = (gid, required)
        cache = self._cache
        cached = cache.get(key, _MISSING)
        if cached is not _MISSING:
            if cached is _IN_PROGRESS:
                raise OptimizerError(f"cycle detected while optimizing group {gid}")
            return cached
        cache[key] = _IN_PROGRESS
        result = self._best_ordered(gid, required)
        cache[key] = result
        return result

    # ------------------------------------------------------------------
    def _candidate(self, expr, op, cardinality: float, groups) -> tuple:
        """The per-expression candidate record: (op, children, delivered
        order, per-child requirements, local cost, local id)."""
        operator_cost = self.cost_model.operator_cost
        children = expr.children
        arity = len(children)
        if type(op).required_child_order is _NO_CHILD_ORDER:
            child_reqs = _EMPTY_REQS[arity]
        else:
            child_reqs = tuple(
                op.required_child_order(i) for i in range(arity)
            )
        if arity == 2:
            child_rows = (
                groups[children[0]].cardinality,
                groups[children[1]].cardinality,
            )
        elif arity == 1:
            child_rows = (groups[children[0]].cardinality,)
        else:
            child_rows = ()
        if type(op).delivered_order is _NO_DELIVERED_ORDER:
            delivered = ()
        else:
            delivered = op.delivered_order()
        local = operator_cost(op, cardinality, child_rows)
        return (op, children, delivered, child_reqs, local, expr.local_id)

    def _store_ordered_info(
        self, gid: int, group, cardinality: float, ordered, enforcers
    ) -> tuple:
        """Snapshot the order-state tables, stamped with the expression
        count so pruning-time mutation of the group is detected."""
        info = (len(group.exprs), cardinality, ordered, enforcers)
        self._ordered_info[gid] = info
        return info

    def _rebuild_ordered_info(self, gid: int, group, cardinality: float) -> tuple:
        """Re-collect the order-delivering candidates and enforcers from
        the group's *current* expressions (after pruning removed some)."""
        groups = self.memo.groups
        operator_cost = self.cost_model.operator_cost
        ordered: list[tuple] = []
        enforcers: list[tuple] = []
        for expr in group.exprs:
            if not expr.is_physical:
                continue
            op = expr.op
            if expr.is_enforcer:
                if isinstance(op, Sort):
                    enforcers.append(
                        (expr, operator_cost(op, cardinality, (cardinality,)))
                    )
                continue
            candidate = self._candidate(expr, op, cardinality, groups)
            if candidate[2]:
                ordered.append(candidate)
        return self._store_ordered_info(gid, group, cardinality, ordered, enforcers)

    # ------------------------------------------------------------------
    def _best_unordered(self, gid: int) -> _Best | None:
        """The order-free state, fused with candidate-table construction."""
        fault_point("bestplan.object", self)
        if self.scope is not None:
            self.scope.checkpoint("bestplan.object")
        group = self.memo.group(gid)
        cardinality = group.cardinality
        if cardinality is None:
            raise OptimizerError(
                f"group {gid} has no cardinality; run annotate_cardinalities first"
            )
        groups = self.memo.groups
        operator_cost = self.cost_model.operator_cost
        make_candidate = self._candidate
        cache_get = self._cache.get
        best0 = self._best0
        search = self.best
        ordered_candidates: list[tuple] = []
        enforcers: list[tuple] = []
        best_total = _INFINITY
        best_candidate: tuple | None = None

        for expr in group.exprs:
            if not expr.is_physical:
                continue
            op = expr.op
            if expr.is_enforcer:
                if isinstance(op, Sort):
                    enforcers.append(
                        (expr, operator_cost(op, cardinality, (cardinality,)))
                    )
                continue
            candidate = make_candidate(expr, op, cardinality, groups)
            _, children, delivered, child_reqs, local, _ = candidate
            if delivered:
                ordered_candidates.append(candidate)
            # The order-free state accepts every non-enforcer candidate.
            # Plans are not assembled during the scan — only the winning
            # candidate's plan is built, once, afterwards.
            total = local
            feasible = True
            for child_gid, child_req in zip(children, child_reqs):
                # Inline both cache hits: order-free child states live in
                # a gid-indexed array, ordered ones in the state dict.
                if child_req:
                    child_best = cache_get((child_gid, child_req), _MISSING)
                else:
                    child_best = best0[child_gid]
                if child_best is _MISSING:
                    child_best = search(child_gid, child_req)
                elif child_best is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {child_gid}"
                    )
                if child_best is None:
                    feasible = False
                    break
                total += child_best.cost
            if not feasible:
                continue
            if total < best_total:
                best_total = total
                best_candidate = (op, children, child_reqs, expr.local_id)

        self._store_ordered_info(
            gid, group, cardinality, ordered_candidates, enforcers
        )
        if best_candidate is None:
            return None
        return self._assemble(gid, cardinality, best_total, best_candidate)

    # ------------------------------------------------------------------
    def _best_ordered(self, gid: int, required: SortOrder) -> _Best | None:
        """A state with a sort requirement: only order-delivering
        candidates (plus the group's Sort enforcer) can satisfy it."""
        info = self._ordered_info.get(gid)
        if info is None:
            # Fill the candidate table (and the order-free state, which
            # the enforcer path consults anyway).
            self.best(gid, ())
            info = self._ordered_info[gid]
        group = self.memo.group(gid)
        if info[0] != len(group.exprs):
            # The group was mutated since the snapshot (cost-bound pruning
            # removes expressions in place): answer from live expressions,
            # matching the behavior of a from-scratch scan.
            info = self._rebuild_ordered_info(gid, group, info[1])
        _, cardinality, ordered_candidates, enforcers = info
        required_len = len(required)
        cache_get = self._cache.get
        best0 = self._best0
        search = self.best
        best_total = _INFINITY
        best_candidate: tuple | None = None

        for op, children, delivered, child_reqs, local, local_id in ordered_candidates:
            if delivered[:required_len] != required:
                continue
            total = local
            feasible = True
            for child_gid, child_req in zip(children, child_reqs):
                if child_req:
                    child_best = cache_get((child_gid, child_req), _MISSING)
                else:
                    child_best = best0[child_gid]
                if child_best is _MISSING:
                    child_best = search(child_gid, child_req)
                elif child_best is _IN_PROGRESS:
                    raise OptimizerError(
                        f"cycle detected while optimizing group {child_gid}"
                    )
                if child_best is None:
                    feasible = False
                    break
                total += child_best.cost
            if not feasible:
                continue
            if total < best_total:
                best_total = total
                best_candidate = (op, children, child_reqs, local_id)

        best: _Best | None = None
        if best_candidate is not None:
            best = self._assemble(gid, cardinality, best_total, best_candidate)

        for expr, local in enforcers:
            if not order_satisfies(expr.op.delivered_order(), required):
                continue
            inner = search(gid, ())
            if inner is not None:
                total = local + inner.cost
                if best is None or total < best.cost:
                    best = _Best(
                        cost=total,
                        plan=PlanNode(
                            op=expr.op,
                            children=(inner.plan,),
                            group_id=gid,
                            local_id=expr.local_id,
                            cardinality=cardinality,
                        ),
                    )
            break

        return best

    # ------------------------------------------------------------------
    def _assemble(
        self, gid: int, cardinality: float, total: float, candidate: tuple
    ) -> _Best:
        """Build the plan for a scan's winning candidate (children's best
        states are all cached by the time a winner is known)."""
        op, children, child_reqs, local_id = candidate
        plans = tuple(
            self.best(child_gid, child_req).plan
            for child_gid, child_req in zip(children, child_reqs)
        )
        return _Best(
            cost=total,
            plan=PlanNode(
                op=op,
                children=plans,
                group_id=gid,
                local_id=local_id,
                cardinality=cardinality,
            ),
        )


def find_best_plan(
    memo: Memo, cost_model: CostModel, required_order: SortOrder = (), scope=None
) -> tuple[PlanNode, float]:
    """The optimizer's chosen plan and its cost."""
    search = BestPlanSearch(memo, cost_model, scope=scope)
    if memo.root_group_id is None:
        raise OptimizerError("memo has no root group")
    best = search.best(memo.root_group_id, required_order)
    if best is None:
        raise OptimizerError(
            "no physical plan satisfies the root requirement "
            "(are implementations/enforcers enabled?)"
        )
    return best.plan, best.cost


# ======================================================================
# the layered columnar DP
# ======================================================================
def _numpy_or_none():
    """numpy, unless absent or disabled via REPRO_COLUMNAR_NUMPY=0."""
    if os.environ.get("REPRO_COLUMNAR_NUMPY", "").strip() == "0":
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is available here
        return None
    return numpy


class ColumnarBestPlanSearch:
    """Layered best-plan DP over the struct-of-arrays physical store.

    The recursive object search (:class:`BestPlanSearch`) and this sweep
    compute the same function — the cheapest plan per ``(group, required
    sort order)`` state — but the columnar store makes every state's
    requirement known *up front* (the requirement set collected during
    batched implementation is exactly the set of child orders any
    candidate ever demands, plus the root ORDER BY).  So instead of
    recursing over ``GroupExpr`` objects, the search sweeps groups
    bottom-up in layers — leaves, then join groups by relation-set
    popcount (children of a join strictly precede it), then the unary
    tower — and resolves each group's order-free optimum and all its
    ordered states from the arrays.  Join layers are vectorized with
    numpy when available (cost formulas and candidate minima as array
    expressions over the whole layer); the pure-Python fallback walks the
    same arrays row by row.

    Tie-breaking replicates the object search bit for bit: candidates
    are considered in insertion (local-id) order with strict-``<``
    improvement, ordered states consult only order-delivering candidates
    plus the group's first satisfying Sort enforcer, and per-candidate
    totals are accumulated in the same ``local + child0 + child1``
    association — so the chosen plan, its local ids, and its cost are
    byte-identical to the object path's (asserted by the columnar
    property suite).
    """

    def __init__(
        self, store: ColumnarPhysicalStore, cost_model: CostModel, scope=None
    ):
        self.store = store
        self.memo = store.memo
        self.cost_model = cost_model
        self.scope = scope
        groups = self.memo.groups
        G = len(groups)
        self._card = card = [0.0] * G
        for group in groups:
            if group.cardinality is None:
                raise OptimizerError(
                    f"group {group.gid} has no cardinality; "
                    "run annotate_cardinalities first"
                )
            card[group.gid] = group.cardinality

        self._best0 = [_INFINITY] * G
        self._best0_row = [-1] * G

        #: state table: one slot per collected (group, required kid)
        self._state_index = {
            state: sid for sid, state in enumerate(store.requirements)
        }
        S = len(store.requirements)
        self._state_cost = [_INFINITY] * S
        #: winner per state: row index, or ("sort", position), or None
        self._state_winner: list = [None] * S
        self._reqs_by_gid: dict[int, list[tuple[int, int]]] = {}
        for sid, (gid, kid) in enumerate(store.requirements):
            self._reqs_by_gid.setdefault(gid, []).append((sid, kid))

        #: group layers: leaves and towers run scalar; join groups run
        #: per popcount layer (vectorized when numpy is present)
        self._leaf_gids: list[int] = []
        self._tower_gids: list[int] = []
        join_layers: dict[int, list[int]] = {}
        for group in groups:
            if group.key[0] == "rels":
                if group.mask & (group.mask - 1):
                    join_layers.setdefault(group.mask.bit_count(), []).append(
                        group.gid
                    )
                else:
                    self._leaf_gids.append(group.gid)
            else:
                self._tower_gids.append(group.gid)
        self._join_layers = [join_layers[pc] for pc in sorted(join_layers)]

    # ------------------------------------------------------------------
    def run(self) -> "ColumnarBestPlanSearch":
        np = _numpy_or_none()
        checkpoint = self.scope.checkpoint if self.scope is not None else None
        if checkpoint is not None:
            checkpoint("bestplan.layer", len(self._leaf_gids))
        for gid in self._leaf_gids:
            self._process_group_scalar(gid)
        if np is not None and self.store.row_count:
            self._run_join_layers_numpy(np)
        else:
            for layer in self._join_layers:
                fault_point("bestplan.layer", self)
                if checkpoint is not None:
                    checkpoint("bestplan.layer", len(layer))
                for gid in layer:
                    self._process_group_scalar(gid)
        if checkpoint is not None:
            checkpoint("bestplan.layer", len(self._tower_gids))
        for gid in self._tower_gids:
            self._process_group_scalar(gid)
        return self

    # ------------------------------------------------------------------
    # shared scalar machinery (leaves, towers, and the no-numpy fallback)
    # ------------------------------------------------------------------
    def _local_cost(self, row: int) -> float:
        """One row's operator-local cost — the same formulas (and the
        same floating-point evaluation order) as ``CostModel``."""
        store = self.store
        tag = store.tag[row]
        card = self._card
        p = self.cost_model.params
        if tag == TAG_NLJ:
            outer = card[store.c0[row]]
            inner = card[store.c1[row]]
            return outer * p.nlj_outer_row + outer * inner * p.nlj_pair
        if tag == TAG_HASH:
            probe = card[store.c0[row]]
            build = card[store.c1[row]]
            out = card[store.gid[row]]
            return (
                build * p.hash_build_row
                + probe * p.hash_probe_row
                + out * p.join_output_row
            )
        if tag == TAG_MERGE:
            left = card[store.c0[row]]
            right = card[store.c1[row]]
            out = card[store.gid[row]]
            return (left + right) * p.merge_row + out * p.join_output_row
        # Scans, unary operators and index-lookup joins price through the
        # cost model itself (their formulas need catalog/operator state).
        op = store.row_op(row)
        out = card[store.gid[row]]
        if tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN):
            child_rows: tuple = ()
        else:
            child_rows = (card[store.c0[row]],)
        return self.cost_model.operator_cost(op, out, child_rows)

    def _sort_local(self, gid: int) -> float:
        rows = self._card[gid]
        return rows * math.log2(rows + 2.0) * self.cost_model.params.sort_row_log

    def _row_total(self, row: int) -> float:
        """Local cost plus the children's best state costs, accumulated
        left to right — the object search's exact float association."""
        store = self.store
        tag = store.tag[row]
        total = self._local_cost(row)
        if tag in (TAG_NLJ, TAG_HASH):
            total += self._best0[store.c0[row]]
            total += self._best0[store.c1[row]]
        elif tag == TAG_MERGE:
            index = self._state_index
            cost = self._state_cost
            total += cost[index[(store.c0[row], store.a[row])]]
            total += cost[index[(store.c1[row], store.b[row])]]
        elif tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN):
            pass
        elif tag == TAG_STREAMAGG and store.b[row] >= 0:
            total += self._state_cost[
                self._state_index[(store.c0[row], store.b[row])]
            ]
        else:
            total += self._best0[store.c0[row]]
        return total

    def _delivered_kid(self, row: int) -> int:
        tag = self.store.tag[row]
        if tag == TAG_MERGE:
            return self.store.a[row]
        if tag in (TAG_INDEX_SCAN, TAG_STREAMAGG):
            return self.store.b[row]
        return -1

    def _process_group_scalar(self, gid: int) -> None:
        store = self.store
        start, end = store.group_rows(gid)
        best = _INFINITY
        best_row = -1
        ordered: list[tuple[int, int, float]] = []
        for row in range(start, end):
            total = self._row_total(row)
            dkid = self._delivered_kid(row)
            if dkid >= 0:
                ordered.append((dkid, row, total))
            if total < best:
                best = total
                best_row = row
        self._best0[gid] = best
        self._best0_row[gid] = best_row
        reqs = self._reqs_by_gid.get(gid)
        if reqs:
            kid_bytes = self.store.kid_bytes
            for sid, rkid in reqs:
                rb = kid_bytes[rkid]
                rbest = _INFINITY
                rrow = -1
                for dkid, row, total in ordered:
                    if kid_bytes[dkid].startswith(rb) and total < rbest:
                        rbest = total
                        rrow = row
                self._resolve_state(gid, sid, rkid, rbest, rrow)

    def _resolve_state(
        self, gid: int, sid: int, rkid: int, cand_best: float, cand_row: int
    ) -> None:
        """Finish one ordered state: compare the best order-delivering
        candidate against the group's Sort enforcer.

        A state exists only for collected requirements, and the enforcer
        pass creates one Sort per requirement — so whenever the group has
        sorts at all, a satisfying one exists (at least the requirement's
        own), and every sort of a group prices identically (sort cost
        depends only on group cardinality).  Which satisfying sort wins
        (the first, as in the object search) only matters for plan
        identity, so it is resolved lazily during assembly.
        """
        winner = cand_row if cand_row >= 0 else None
        best = cand_best
        if gid in self.store.sorts_by_gid:
            inner = self._best0[gid]
            if inner < _INFINITY:
                total = self._sort_local(gid) + inner
                if winner is None or total < best:
                    best = total
                    winner = ("sort", rkid)
        self._state_cost[sid] = best
        self._state_winner[sid] = winner

    # ------------------------------------------------------------------
    # the vectorized join layers
    # ------------------------------------------------------------------
    def _run_join_layers_numpy(self, np) -> None:
        store = self.store
        intc = np.intc
        tag = np.frombuffer(store.tag, dtype=intc)
        gid_ = np.frombuffer(store.gid, dtype=intc)
        c0 = np.frombuffer(store.c0, dtype=intc)
        c1 = np.frombuffer(store.c1, dtype=intc)
        a = np.frombuffer(store.a, dtype=intc)
        b = np.frombuffer(store.b, dtype=intc)
        card = np.asarray(self._card, dtype=np.float64)
        p = self.cost_model.params
        inf = _INFINITY

        # Operator-local costs, whole memo at once.  Formula shape and
        # term order match CostModel exactly (same IEEE rounding).
        local = np.zeros(len(tag), dtype=np.float64)
        m = tag == TAG_NLJ
        outer = card[c0[m]]
        inner = card[c1[m]]
        local[m] = outer * p.nlj_outer_row + outer * inner * p.nlj_pair
        m = tag == TAG_HASH
        local[m] = (
            card[c1[m]] * p.hash_build_row
            + card[c0[m]] * p.hash_probe_row
            + card[gid_[m]] * p.join_output_row
        )
        m = tag == TAG_MERGE
        local[m] = (card[c0[m]] + card[c1[m]]) * p.merge_row + card[
            gid_[m]
        ] * p.join_output_row
        for row in np.nonzero(tag == TAG_INLJ)[0]:
            local[row] = self._local_cost(int(row))

        # Merge rows' child states, resolved to dense state ids.
        S = len(store.requirements)
        state_cost = np.full(S, inf, dtype=np.float64)
        mpos = np.nonzero(tag == TAG_MERGE)[0]
        if S and mpos.size:
            state_codes = np.fromiter(
                ((g << 32) | k for g, k in store.requirements),
                dtype=np.int64,
                count=S,
            )
            order = np.argsort(state_codes)
            sorted_codes = state_codes[order]

            def to_sid(gids, kids):
                codes = (gids.astype(np.int64) << 32) | kids.astype(np.int64)
                return order[sorted_codes.searchsorted(codes)]

            sid0 = to_sid(c0[mpos], a[mpos])
            sid1 = to_sid(c1[mpos], b[mpos])
            sid0_row = np.full(len(tag), -1, dtype=np.int64)
            sid1_row = np.full(len(tag), -1, dtype=np.int64)
            sid0_row[mpos] = sid0
            sid1_row[mpos] = sid1
        else:
            sid0_row = sid1_row = np.full(len(tag), -1, dtype=np.int64)

        # Requirement satisfaction as lexicographic kid-rank intervals:
        # delivered satisfies required iff its bytes extend the required
        # bytes, i.e. its kid's lex rank falls in [rank(rb), rank(rb+ff)).
        kid_bytes = store.kid_bytes
        lex_sorted = sorted(range(len(kid_bytes)), key=kid_bytes.__getitem__)
        lexrank = np.zeros(len(kid_bytes), dtype=np.int64)
        for rank, kid in enumerate(lex_sorted):
            lexrank[kid] = rank
        sorted_bytes = [kid_bytes[kid] for kid in lex_sorted]
        req_bounds: dict[int, tuple[int, int]] = {}
        for _gid, rkid in store.requirements:
            if rkid not in req_bounds:
                rb = kid_bytes[rkid]
                req_bounds[rkid] = (
                    bisect_left(sorted_bytes, rb),
                    bisect_left(sorted_bytes, rb + b"\xff"),
                )

        best0 = np.full(len(card), inf, dtype=np.float64)
        for gid in self._leaf_gids:  # already processed scalar
            best0[gid] = self._best0[gid]
        for sid in range(S):  # leaf ordered states resolved scalar
            state_cost[sid] = self._state_cost[sid]

        group_start = store.group_start
        reqs_by_gid = self._reqs_by_gid
        checkpoint = self.scope.checkpoint if self.scope is not None else None
        for layer in self._join_layers:
            fault_point("bestplan.layer", self)
            if checkpoint is not None:
                checkpoint("bestplan.layer", len(layer))
            segments = [
                (gid, group_start[gid], group_start[gid + 1])
                for gid in layer
                if group_start[gid + 1] > group_start[gid]
            ]
            if not segments:
                continue
            rows = np.concatenate(
                [np.arange(s, e, dtype=np.int64) for _g, s, e in segments]
            )
            t = tag[rows]
            tot = local[rows].copy()
            m = (t == TAG_NLJ) | (t == TAG_HASH)
            idx = rows[m]
            tot[m] += best0[c0[idx]]
            tot[m] += best0[c1[idx]]
            m = t == TAG_MERGE
            idx = rows[m]
            tot[m] += state_cost[sid0_row[idx]]
            tot[m] += state_cost[sid1_row[idx]]
            m = t == TAG_INLJ
            if m.any():
                tot[m] += best0[c0[rows[m]]]

            seg_lens = np.array([e - s for _g, s, e in segments])
            seg_starts = np.zeros(len(segments), dtype=np.int64)
            np.cumsum(seg_lens[:-1], out=seg_starts[1:])
            mins = np.minimum.reduceat(tot, seg_starts)
            pos = np.arange(len(tot), dtype=np.int64)
            cand = np.where(tot == np.repeat(mins, seg_lens), pos, len(tot))
            winners = np.minimum.reduceat(cand, seg_starts)
            layer_gids = np.array([g for g, _s, _e in segments])
            best0[layer_gids] = mins
            for i, (gid, s, e) in enumerate(segments):
                seg_min = mins[i]
                if seg_min < inf:
                    self._best0[gid] = float(seg_min)
                    self._best0_row[gid] = int(rows[winners[i]])

                reqs = reqs_by_gid.get(gid)
                if not reqs:
                    continue
                off = seg_starts[i]
                seg_tot = tot[off : off + (e - s)]
                seg_merge = np.nonzero(t[off : off + (e - s)] == TAG_MERGE)[0]
                if seg_merge.size:
                    cand_tot = seg_tot[seg_merge]
                    ranks = lexrank[a[s + seg_merge]]
                    # Stable sort: equal delivered orders keep insertion
                    # order, preserving the object search's tie-breaks.
                    corder = np.argsort(ranks, kind="stable")
                    sorted_ranks = ranks[corder]
                else:
                    cand_tot = corder = sorted_ranks = None
                for sid, rkid in reqs:
                    rbest = inf
                    rrow = -1
                    if cand_tot is not None:
                        lo, hi = req_bounds[rkid]
                        i0 = sorted_ranks.searchsorted(lo, "left")
                        i1 = sorted_ranks.searchsorted(hi, "left")
                        if i0 < i1:
                            sel = corder[i0:i1]
                            tvals = cand_tot[sel]
                            seg_min = tvals.min()
                            if seg_min < inf:
                                first = int(sel[tvals == seg_min].min())
                                rbest = float(seg_min)
                                rrow = int(s + seg_merge[first])
                    self._resolve_state(gid, sid, rkid, rbest, rrow)
                    state_cost[sid] = self._state_cost[sid]

    # ------------------------------------------------------------------
    # plan assembly (winning path only)
    # ------------------------------------------------------------------
    def best_plan(self, required_order: SortOrder = ()) -> tuple[PlanNode, float]:
        memo = self.memo
        if memo.root_group_id is None:
            raise OptimizerError("memo has no root group")
        root = memo.root_group_id
        required = tuple(required_order)
        if required:
            if required != self.store.root_order:
                raise OptimizerError(
                    "columnar best-plan search was built for root order "
                    f"{self.store.root_order!r}, not {required!r}"
                )
            sid = self._state_index[(root, self.store.root_kid)]
            cost = self._state_cost[sid]
            if cost >= _INFINITY:
                raise OptimizerError(
                    "no physical plan satisfies the root requirement "
                    "(are implementations/enforcers enabled?)"
                )
            return self._assemble(root, self.store.root_kid), cost
        cost = self._best0[root]
        if cost >= _INFINITY:
            raise OptimizerError(
                "no physical plan satisfies the root requirement "
                "(are implementations/enforcers enabled?)"
            )
        return self._assemble(root, None), cost

    def _assemble(self, gid: int, rkid: int | None) -> PlanNode:
        store = self.store
        if rkid is None:
            row = self._best0_row[gid]
            if row < 0:  # pragma: no cover - guarded by cost checks
                raise OptimizerError(f"group {gid} has no feasible plan")
            return self._plan_from_row(row)
        winner = self._state_winner[self._state_index[(gid, rkid)]]
        if winner is None:  # pragma: no cover - guarded by cost checks
            raise OptimizerError(f"group {gid} has no feasible ordered plan")
        if isinstance(winner, tuple):
            _tag, winner_rkid = winner
            # First satisfying sort in insertion order, as the object
            # search picks — resolved here, on the winning path only.
            rb = store.kid_bytes[winner_rkid]
            kid_bytes = store.kid_bytes
            position, skid = next(
                (p, k)
                for p, k in enumerate(store.sorts_by_gid[gid])
                if kid_bytes[k].startswith(rb)
            )
            inner = self._assemble(gid, None)
            return PlanNode(
                op=Sort(store.columns_of(skid)),
                children=(inner,),
                group_id=gid,
                local_id=store.sort_local_id(gid, position),
                cardinality=self._card[gid],
            )
        return self._plan_from_row(winner)

    def _plan_from_row(self, row: int) -> PlanNode:
        store = self.store
        tag = store.tag[row]
        gid = store.gid[row]
        if tag == TAG_MERGE:
            slots = (
                (store.c0[row], store.a[row]),
                (store.c1[row], store.b[row]),
            )
        elif tag in (TAG_NLJ, TAG_HASH):
            slots = ((store.c0[row], None), (store.c1[row], None))
        elif tag in (TAG_TABLE_SCAN, TAG_INDEX_SCAN):
            slots = ()
        elif tag == TAG_STREAMAGG and store.b[row] >= 0:
            slots = ((store.c0[row], store.b[row]),)
        else:
            slots = ((store.c0[row], None),)
        children = tuple(self._assemble(cg, kid) for cg, kid in slots)
        return PlanNode(
            op=store.row_op(row),
            children=children,
            group_id=gid,
            local_id=store.row_local_id(row),
            cardinality=self._card[gid],
        )


def find_best_plan_columnar(
    store: ColumnarPhysicalStore,
    cost_model: CostModel,
    required_order: SortOrder = (),
    scope=None,
) -> tuple[PlanNode, float]:
    """The optimizer's chosen plan from a columnar memo — same plan, same
    cost as :func:`find_best_plan` over the materialized memo."""
    return ColumnarBestPlanSearch(store, cost_model, scope=scope).run().best_plan(
        required_order
    )
