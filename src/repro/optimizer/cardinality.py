"""Cardinality estimation.

Standard System-R style estimation over catalog statistics: per-conjunct
selectivities under the independence assumption, equality selectivity
``1/max(ndv)``, range selectivities interpolated over the column's
``[lo, hi]`` range (ISO date strings are mapped to day ordinals so date
windows like TPC-H's ``o_orderdate >= '1994-01-01'`` interpolate
correctly).

One deliberate design choice: a group's cardinality depends only on the
*set of relations* it covers (base cardinalities after pushed filters,
times the selectivities of every conjunct applicable inside the set).
All join orders of the same relation set therefore agree on output
cardinality — the consistency property real optimizers maintain, and the
reason costs in this reproduction differ only through *operator choices*,
as in the paper's experiments.
"""

from __future__ import annotations

import datetime

from repro.algebra.expressions import (
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    InList,
    IsNull,
    Like,
    Literal,
    Scalar,
    UnaryMinus,
)
from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError
from repro.sql.binder import BoundQuery

__all__ = ["CardinalityEstimator"]

_DEFAULT_EQ_SELECTIVITY = 0.05
_DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
_DEFAULT_LIKE_SELECTIVITY = 0.1
_MIN_SELECTIVITY = 1e-9


def _date_ordinal(value: str) -> float | None:
    try:
        return float(datetime.date.fromisoformat(value).toordinal())
    except (ValueError, TypeError):
        return None


def _as_number(value) -> float | None:
    """Map a literal bound to a number for interpolation, if possible."""
    if isinstance(value, bool):  # pragma: no cover - no boolean literals
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return _date_ordinal(value)
    return None


class CardinalityEstimator:
    """Estimates selectivities and group cardinalities.

    ``ledger`` (optional) is a
    :class:`~repro.obs.feedback.CardinalityLedger` of execution-observed
    cardinalities: :meth:`relation_set_cardinality` substitutes the
    observed rows wherever the ledger holds an observation for the
    relation set (under the query's alias universe) and leaves the
    static estimate untouched everywhere else.  ``feedback_hits`` counts
    substitutions performed.  With no ledger (the default) estimation is
    byte-identical to the historical path.
    """

    def __init__(self, catalog: Catalog, query: BoundQuery, ledger=None):
        self.catalog = catalog
        self.query = query
        self._quantifier_table = {q.alias: q.table for q in query.quantifiers}
        self._base_cards: dict[str, float] = {}
        self._sel_cache: dict[tuple, float] = {}
        #: ledger binding under this query's universe; ``None`` disables
        #: feedback entirely (one attribute read per relation-set call)
        self._feedback = None
        self.feedback_hits = 0
        if ledger is not None:
            universe = tuple(sorted(q.alias for q in query.quantifiers))
            binding = ledger.binding(universe)
            if len(binding):
                self._feedback = binding

    # ------------------------------------------------------------------
    # column statistics lookups
    # ------------------------------------------------------------------
    def _table_for(self, column: ColumnId) -> str:
        table = self._quantifier_table.get(column.alias)
        if table is None:
            raise OptimizerError(
                f"no statistics available for column {column.render()!r}"
            )
        return table

    def column_distinct(self, column: ColumnId) -> int:
        table = self._table_for(column)
        return self.catalog.table_stats(table).distinct(column.column)

    def _column_bounds(self, column: ColumnId) -> tuple[float, float] | None:
        table = self._table_for(column)
        stats = self.catalog.table_stats(table).column(column.column)
        lo = _as_number(stats.lo)
        hi = _as_number(stats.hi)
        if lo is None or hi is None or hi <= lo:
            return None
        return lo, hi

    def _null_fraction(self, column: ColumnId) -> float:
        table = self._table_for(column)
        return self.catalog.table_stats(table).column(column.column).null_fraction

    # ------------------------------------------------------------------
    # selectivity
    # ------------------------------------------------------------------
    def selectivity(self, expr: Scalar) -> float:
        key = expr.fingerprint()
        cached = self._sel_cache.get(key)
        if cached is None:
            cached = max(_MIN_SELECTIVITY, min(1.0, self._selectivity(expr)))
            self._sel_cache[key] = cached
        return cached

    def _selectivity(self, expr: Scalar) -> float:
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(expr)
        if isinstance(expr, BoolExpr):
            if expr.op is BoolOp.AND:
                sel = 1.0
                for arg in expr.args:
                    sel *= self.selectivity(arg)
                return sel
            if expr.op is BoolOp.OR:
                miss = 1.0
                for arg in expr.args:
                    miss *= 1.0 - self.selectivity(arg)
                return 1.0 - miss
            return 1.0 - self.selectivity(expr.args[0])
        if isinstance(expr, Like):
            sel = _DEFAULT_LIKE_SELECTIVITY
            return 1.0 - sel if expr.negated else sel
        if isinstance(expr, InList):
            if isinstance(expr.arg, ColumnRef):
                ndv = self.column_distinct(expr.arg.column_id)
                sel = min(1.0, len(set(expr.values)) / ndv)
            else:
                sel = min(1.0, len(set(expr.values)) * _DEFAULT_EQ_SELECTIVITY)
            return 1.0 - sel if expr.negated else sel
        if isinstance(expr, IsNull):
            if isinstance(expr.arg, ColumnRef):
                fraction = self._null_fraction(expr.arg.column_id)
            else:
                fraction = 0.01
            return 1.0 - fraction if expr.negated else fraction
        # Anything else (bare column, arithmetic used as boolean...) gets a
        # conservative default.
        return 0.25

    def _comparison_selectivity(self, expr: Comparison) -> float:
        left, right = expr.left, expr.right
        op = expr.op
        # Normalize "const op col" to "col flipped-op const".
        if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
            left, right = right, left
            op = op.flipped()

        if op is CompOp.EQ:
            if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                ndv_left = self.column_distinct(left.column_id)
                ndv_right = self.column_distinct(right.column_id)
                return 1.0 / max(ndv_left, ndv_right, 1)
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                return 1.0 / max(self.column_distinct(left.column_id), 1)
            return _DEFAULT_EQ_SELECTIVITY
        if op is CompOp.NE:
            eq = self._comparison_selectivity(Comparison(CompOp.EQ, left, right))
            return 1.0 - eq
        # Range comparison.
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return self._range_selectivity(left.column_id, op, right.value)
        return _DEFAULT_RANGE_SELECTIVITY

    def _range_selectivity(self, column: ColumnId, op: CompOp, value) -> float:
        bounds = self._column_bounds(column)
        bound = _as_number(value)
        if bounds is None or bound is None:
            return _DEFAULT_RANGE_SELECTIVITY
        lo, hi = bounds
        fraction_below = (bound - lo) / (hi - lo)
        fraction_below = max(0.0, min(1.0, fraction_below))
        if op in (CompOp.LT, CompOp.LE):
            return fraction_below
        return 1.0 - fraction_below

    # ------------------------------------------------------------------
    # cardinalities
    # ------------------------------------------------------------------
    def base_cardinality(self, alias: str) -> float:
        """Rows of one range variable after its pushed-down filter."""
        cached = self._base_cards.get(alias)
        if cached is not None:
            return cached
        table = self._table_for(ColumnId(alias, "?"))
        rows = float(self.catalog.table_stats(table).row_count)
        predicate = self.query.pushed_filters.get(alias)
        if predicate is not None:
            rows *= self.selectivity(predicate)
        rows = max(rows, 1.0)
        self._base_cards[alias] = rows
        return rows

    def relation_set_cardinality(
        self, relations: frozenset[str], internal_conjuncts: list[Scalar]
    ) -> float:
        """Cardinality of the join of ``relations``.

        ``internal_conjuncts`` are the multi-table conjuncts applicable
        entirely inside the set.  An attached feedback ledger overrides
        the estimate with the observed cardinality when the set was
        measured by a previous execution.
        """
        feedback = self._feedback
        if feedback is not None:
            observed = feedback.rows_for(relations)
            if observed is not None:
                self.feedback_hits += 1
                return observed
        card = 1.0
        for alias in relations:
            card *= self.base_cardinality(alias)
        for conjunct in internal_conjuncts:
            card *= self.selectivity(conjunct)
        return max(card, 1.0)

    def aggregate_cardinality(
        self, child_cardinality: float, group_by: tuple[ColumnId, ...]
    ) -> float:
        """Standard distinct-product estimate, capped by the input size."""
        if not group_by:
            return 1.0
        distinct = 1.0
        for column in group_by:
            distinct *= self.column_distinct(column)
        return max(1.0, min(child_cardinality, distinct))

    def select_cardinality(self, child_cardinality: float, predicate: Scalar) -> float:
        return max(1.0, child_cardinality * self.selectivity(predicate))
