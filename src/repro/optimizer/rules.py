"""Implementation rules as a side-effect-free, queryable module.

This is the single source of truth for the paper's rule category (2) — "a
physical operator in the same group" — shared by two consumers:

* :func:`repro.optimizer.implementation.implement_memo` *materializes* the
  rules: it inserts one physical :class:`~repro.memo.group.GroupExpr` per
  generated operator into the memo;
* :mod:`repro.planspace.implicit` applies the rules *analytically*: it
  derives per-group physical-alternative counts from the rule arity alone
  (:func:`join_rule_arity`) and only instantiates the operators on an
  unranked plan's path (:func:`join_implementations` and friends).

Both consumers must agree exactly — operator identity, generation order,
and enforcer requirements — or counting and unranking diverge from the
materialized search space.  The property suite cross-validates them
(``tests/property/test_prop_implicit_equivalence.py``).

Rule order (the order operators enter a group, which fixes the paper's
``group.local`` identifiers):

* ``Get``  -> ``TableScan``, then one ``IndexScan`` per catalog index;
* ``Join`` -> ``NestedLoopJoin``, ``HashJoin``, ``MergeJoin`` (the latter
  two only when an equality conjunct straddles the sides), then any
  ``IndexNestedLoopJoin`` variants when enabled;
* ``Select`` -> ``Filter``; ``Aggregate`` -> ``HashAggregate`` +
  ``StreamAggregate`` when grouped, ``StreamAggregate`` alone when
  scalar (hash needs grouping columns); ``Project`` -> ``Project``;
* ``Sort`` enforcers last, one per distinct required ``(group, order)``
  pair, in global first-occurrence order.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.algebra.expressions import (
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    Scalar,
    make_conjunction,
    split_conjuncts,
)
from repro.algebra.logical import (
    LogicalAggregate,
    LogicalGet,
    LogicalProject,
    LogicalSelect,
)
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalOperator,
    PhysicalProject,
    StreamAggregate,
    TableScan,
)
from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError

__all__ = [
    "ImplementationConfig",
    "JoinImplementations",
    "equality_analysis",
    "extract_equi_keys",
    "index_nl_join_implementations",
    "join_implementations",
    "join_physical_kinds",
    "join_rule_arity",
    "nested_loop_join",
    "scan_implementations",
    "unary_implementations",
]


from dataclasses import dataclass


@dataclass(frozen=True)
class ImplementationConfig:
    """Which implementations to generate (ablation knobs).

    ``enable_index_nl_join`` adds index-lookup joins (the paper's "index
    utilization" dimension); it is off by default so that the documented
    baseline spaces stay comparable — the index-join ablation benchmark
    measures its effect explicitly.
    """

    enable_index_scans: bool = True
    enable_hash_join: bool = True
    enable_merge_join: bool = True
    enable_nested_loop_join: bool = True
    enable_index_nl_join: bool = False
    enable_stream_aggregate: bool = True
    enable_sort_enforcers: bool = True


# ----------------------------------------------------------------------
# equality analysis and key extraction
# ----------------------------------------------------------------------
def equality_analysis(
    predicate: Scalar,
) -> tuple[
    tuple[tuple[ColumnId, ColumnId, str, str, tuple, tuple, Scalar], ...],
    tuple[Scalar, ...],
]:
    """Classify a predicate's conjuncts once, memoized on the object.

    Returns ``(candidate equality pairs, other conjuncts)`` where each
    pair entry is ``(a, b, a_alias, b_alias, sort_key_ab, sort_key_ba,
    conjunct)``.  Join predicates are interned by the join graph, so
    across a whole memo the same predicate object is analyzed for both
    join orientations and for every implementation rule — the conjunct
    walk happens exactly once.
    """
    cached = predicate.__dict__.get("_eq_analysis")
    if cached is None:
        eq_pairs = []
        others: list[Scalar] = []
        for conjunct in split_conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is CompOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                a = conjunct.left.column_id
                b = conjunct.right.column_id
                # Both orientations' sort keys are precomputed so the
                # per-join extraction sorts plain string tuples.
                eq_pairs.append(
                    (
                        a,
                        b,
                        a.alias,
                        b.alias,
                        (a.alias, a.column, b.alias, b.column),
                        (b.alias, b.column, a.alias, a.column),
                        conjunct,
                    )
                )
            else:
                others.append(conjunct)
        cached = (tuple(eq_pairs), tuple(others))
        object.__setattr__(predicate, "_eq_analysis", cached)
    return cached


def extract_equi_keys(
    predicate: Scalar | None,
    left_relations: frozenset[str],
    right_relations: frozenset[str],
) -> tuple[tuple[ColumnId, ...], tuple[ColumnId, ...], Scalar | None]:
    """Split a join predicate into equi-join keys plus a residual.

    Returns ``(left_keys, right_keys, residual)``; the key lists are empty
    when no equality conjunct straddles the two sides.  Key pairs are
    sorted canonically — by the *left* side's ``(alias, column, right
    alias, right column)`` string key — so the same logical join always
    yields the same physical operator identity.  Note the consequence the
    implicit engine depends on: ``right_keys`` follows the left side's
    sort, so it is generally a different column sequence than the keys of
    the commuted join.
    """
    if predicate is None:
        return (), (), None
    eq_pairs, others = equality_analysis(predicate)
    pairs: list[tuple[tuple, ColumnId, ColumnId]] = []
    residual: list[Scalar] = list(others)
    for a, b, a_alias, b_alias, key_ab, key_ba, conjunct in eq_pairs:
        if a_alias in left_relations and b_alias in right_relations:
            pairs.append((key_ab, a, b))
        elif b_alias in left_relations and a_alias in right_relations:
            pairs.append((key_ba, b, a))
        else:
            residual.append(conjunct)
    if not pairs:
        return (), (), make_conjunction(residual) if residual else None
    if len(pairs) > 1:
        pairs.sort()
    left_keys = tuple(pair[1] for pair in pairs)
    right_keys = tuple(pair[2] for pair in pairs)
    if residual:
        return left_keys, right_keys, make_conjunction(residual)
    return left_keys, right_keys, None


# ----------------------------------------------------------------------
# scans
# ----------------------------------------------------------------------
def scan_implementations(
    op: LogicalGet, catalog: Catalog, config: ImplementationConfig
) -> list[PhysicalOperator]:
    """All access paths for a ``Get``, in generation order."""
    ops: list[PhysicalOperator] = [
        TableScan(table=op.table, alias=op.alias, predicate=op.predicate)
    ]
    if config.enable_index_scans:
        for index in catalog.indexes(op.table):
            key_order = tuple(ColumnId(op.alias, col) for col in index.key)
            ops.append(
                IndexScan(
                    table=op.table,
                    alias=op.alias,
                    index_name=index.name,
                    key_order=key_order,
                    predicate=op.predicate,
                )
            )
    return ops


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------
_CROSS_NLJ = NestedLoopJoin(None)


def nested_loop_join(predicate: Scalar | None) -> NestedLoopJoin:
    """The nested-loops operator for a predicate, interned per object:
    both orientations of a logical join share the predicate, so they share
    the physical operator (and its cached memo key) too."""
    if predicate is None:
        return _CROSS_NLJ
    op = predicate.__dict__.get("_nlj_op")
    if op is None:
        op = NestedLoopJoin(predicate)
        object.__setattr__(predicate, "_nlj_op", op)
    return op


class JoinImplementations(NamedTuple):
    """The join operators the rule set generates for one orientation.

    ``ops`` is the ordered operator list (index-lookup joins excluded —
    those also need the catalog and the inner group's ``Get``; see
    :func:`index_nl_join_implementations`).  ``left_keys``/``right_keys``
    are the canonical equi-key sequences ((), () when none straddle); a
    ``MergeJoin`` in ``ops`` requires exactly these orders of its inputs.
    """

    ops: tuple[PhysicalOperator, ...]
    left_keys: tuple[ColumnId, ...]
    right_keys: tuple[ColumnId, ...]


def join_implementations(
    predicate: Scalar | None,
    left_relations: frozenset[str],
    right_relations: frozenset[str],
    config: ImplementationConfig,
) -> JoinImplementations:
    """Generate one orientation's join operators, in rule order."""
    left_keys, right_keys, residual = extract_equi_keys(
        predicate, left_relations, right_relations
    )
    ops: list[PhysicalOperator] = []
    if config.enable_nested_loop_join:
        ops.append(nested_loop_join(predicate))
    if left_keys:
        if config.enable_hash_join:
            ops.append(HashJoin(left_keys, right_keys, residual))
        if config.enable_merge_join:
            ops.append(MergeJoin(left_keys, right_keys, residual))
    return JoinImplementations(tuple(ops), left_keys, right_keys)


def join_physical_kinds(
    config: ImplementationConfig,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The batched mirror of :func:`join_implementations`: the operator
    *kind* sequence one orientation generates, as ``(with equi-keys,
    without)``.  The columnar implementation path
    (:mod:`repro.memo.columnar`) emits one whole block per logical join
    from these patterns instead of constructing operators; the order must
    stay identical to :func:`join_implementations` or columnar local ids
    diverge from the object memo.
    """
    keyed: list[str] = []
    if config.enable_nested_loop_join:
        keyed.append("nlj")
    if config.enable_hash_join:
        keyed.append("hash")
    if config.enable_merge_join:
        keyed.append("merge")
    cross = ("nlj",) if config.enable_nested_loop_join else ()
    return tuple(keyed), cross


def join_rule_arity(
    config: ImplementationConfig, has_equi_keys: bool
) -> tuple[int, bool]:
    """The analytic mirror of :func:`join_implementations`.

    Returns ``(plain, merge)``: how many order-insensitive join operators
    (nested-loops + hash — each counting ``N(left) * N(right)`` plans) one
    orientation generates, and whether a merge join (whose count depends
    on the children's order-satisfying alternatives) is generated too.
    The implicit engine multiplies counts by this arity instead of
    instantiating operators.
    """
    plain = 0
    if config.enable_nested_loop_join:
        plain += 1
    if has_equi_keys and config.enable_hash_join:
        plain += 1
    return plain, has_equi_keys and config.enable_merge_join


def index_nl_join_implementations(
    inner_get: LogicalGet,
    catalog: Catalog,
    predicate: Scalar | None,
    left_keys: tuple[ColumnId, ...],
    right_keys: tuple[ColumnId, ...],
) -> list[IndexNestedLoopJoin]:
    """Index-lookup joins: the inner side must be a single base table with
    an index whose key prefix is covered by the join's equality columns.

    Unconsumed conjuncts (non-equi conjuncts and equality pairs beyond the
    matched index prefix) stay behind as the operator's residual.  The
    caller has already established that the right child group covers
    exactly one base table whose ``Get`` is ``inner_get``.
    """
    by_inner_column = {
        inner.column: (outer, inner) for outer, inner in zip(left_keys, right_keys)
    }
    ops: list[IndexNestedLoopJoin] = []
    for index in catalog.indexes(inner_get.table):
        outer_keys: list[ColumnId] = []
        inner_keys: list[ColumnId] = []
        for key_column in index.key:
            pair = by_inner_column.get(key_column)
            if pair is None:
                break
            outer_keys.append(pair[0])
            inner_keys.append(pair[1])
        if not outer_keys:
            continue
        consumed = {
            Comparison(CompOp.EQ, ColumnRef(o), ColumnRef(i)).fingerprint()
            for o, i in zip(outer_keys, inner_keys)
        }
        leftover = [
            conjunct
            for conjunct in split_conjuncts(predicate)
            if conjunct.fingerprint() not in consumed
        ]
        ops.append(
            IndexNestedLoopJoin(
                inner_table=inner_get.table,
                inner_alias=inner_get.alias,
                index_name=index.name,
                outer_keys=tuple(outer_keys),
                inner_keys=tuple(inner_keys),
                inner_predicate=inner_get.predicate,
                residual=make_conjunction(leftover),
            )
        )
    return ops


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------
def unary_implementations(
    op, config: ImplementationConfig
) -> list[PhysicalOperator]:
    """Implementations of a unary logical operator, in generation order."""
    if isinstance(op, LogicalSelect):
        return [PhysicalFilter(op.predicate)]
    if isinstance(op, LogicalAggregate):
        if op.group_by:
            ops: list[PhysicalOperator] = [
                HashAggregate(op.group_by, op.aggregates)
            ]
            if config.enable_stream_aggregate:
                ops.append(StreamAggregate(op.group_by, op.aggregates))
            return ops
        # Scalar aggregate: a single streaming pass, no requirement.
        return [StreamAggregate(op.group_by, op.aggregates)]
    if isinstance(op, LogicalProject):
        return [PhysicalProject(op.outputs)]
    raise OptimizerError(f"no implementation rule for {op.name}")
