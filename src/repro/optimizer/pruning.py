"""Cost-bound pruning (ablation, experiment E11).

The paper notes that production optimizers employ "a cost based pruning
heuristic [that] helps avoid expansion of very costly alternatives", and
that for the sampling technique to see the whole space "it is useful to
have the optimizer keep each alternative generated".  This module lets us
quantify that remark: it removes from the memo every physical expression
whose *best achievable* rooted cost exceeds ``factor`` times its group's
best cost, and the pruning benchmark then measures how the count of plans
collapses (and that the optimum survives).
"""

from __future__ import annotations

from repro.memo.memo import Memo
from repro.optimizer.bestplan import BestPlanSearch
from repro.optimizer.cost import CostModel

__all__ = ["prune_memo"]


def prune_memo(memo: Memo, cost_model: CostModel, factor: float) -> int:
    """Drop physical expressions costing more than ``factor`` x group best.

    Returns the number of expressions removed.  ``factor`` is >= 1.0; a
    factor of 1.0 keeps only best-cost operators, larger factors keep
    progressively more of the space.  Logical expressions are never
    removed (they carry the group structure).
    """
    if factor < 1.0:
        raise ValueError("pruning factor must be >= 1.0")
    search = BestPlanSearch(memo, cost_model)
    removed = 0
    for group in memo.groups:
        group_best = search.best(group.gid, ())
        if group_best is None:
            continue
        budget = group_best.cost * factor
        survivors = []
        for expr in group.exprs:
            if not expr.is_physical:
                survivors.append(expr)
                continue
            rooted = _best_rooted_cost(expr, memo, search, cost_model)
            if rooted is not None and rooted <= budget:
                survivors.append(expr)
            else:
                removed += 1
        group.exprs[:] = survivors
    return removed


def _best_rooted_cost(expr, memo: Memo, search: BestPlanSearch, cost_model: CostModel):
    """Cheapest complete sub-plan rooted in ``expr``, or None if infeasible."""
    group = memo.group(expr.group_id)
    if expr.is_enforcer:
        inner = search.best(expr.group_id, ())
        if inner is None:
            return None
        local = cost_model.operator_cost(
            expr.op, group.cardinality, (group.cardinality,)
        )
        return local + inner.cost
    total = 0.0
    for child_pos, child_gid in enumerate(expr.children):
        child_best = search.best(child_gid, expr.op.required_child_order(child_pos))
        if child_best is None:
            return None
        total += child_best.cost
    child_rows = tuple(memo.group(cgid).cardinality for cgid in expr.children)
    return total + cost_model.operator_cost(expr.op, group.cardinality, child_rows)
