"""Cost-bound pruning (experiment E11, and a serving-path option).

The paper notes that production optimizers employ "a cost based pruning
heuristic [that] helps avoid expansion of very costly alternatives", and
that for the sampling technique to see the whole space "it is useful to
have the optimizer keep each alternative generated".  This module lets us
quantify that remark: it removes from the memo every physical expression
whose *best achievable* rooted cost exceeds ``factor`` times the best
cost of every ``(group, requirement)`` context the expression can serve,
and the pruning benchmark then measures how the count of plans collapses
(and that the optimum survives).  Beyond the ablation, pruning is wired
into serving: ``Session.optimize(sql, prune_factor=...)`` and ``repro
optimize --prune-factor`` run it after implementation.

Judging survival per *qualifying context* — not against the order-free
group best alone — is what makes the ``factor >= 1.0`` guarantee sound:
an index scan (or Sort enforcer) is usually beaten order-free by a plain
table scan, but it may be the cheapest supplier of an ordered state some
surviving merge join requires.  Every state's own best plan satisfies
``rooted == best(state) <= factor * best(state)``, so the optimum of
every reachable state (including the root's ORDER BY state, when
``root_order`` is passed) survives intact.

Costing reuses one :class:`~repro.optimizer.bestplan.BestPlanSearch`
memoized state table for the whole sweep — pass the search that already
solved the memo (the optimizer does) and no group best is re-derived at
all.  Survivors are decided for *every* group before any group is
mutated: the search's cached states stay coherent throughout, instead of
being invalidated and rebuilt once per mutated group as the old
interleaved loop did — that re-resolution was O(groups x expressions) of
redundant candidate-table scans on large memos.
"""

from __future__ import annotations

from repro.algebra.physical import PhysicalOperator
from repro.algebra.properties import order_satisfies
from repro.memo.memo import Memo
from repro.optimizer.bestplan import BestPlanSearch
from repro.optimizer.cost import CostModel

__all__ = ["prune_memo"]

_NO_CHILD_ORDER = PhysicalOperator.required_child_order
_NO_DELIVERED_ORDER = PhysicalOperator.delivered_order


def prune_memo(
    memo: Memo,
    cost_model: CostModel,
    factor: float,
    search: BestPlanSearch | None = None,
    root_order: tuple = (),
) -> int:
    """Drop physical expressions costing more than ``factor`` x the best
    of every state they can serve.

    Returns the number of expressions removed.  ``factor`` is >= 1.0; a
    factor of 1.0 keeps only state-best operators, larger factors keep
    progressively more of the space.  Logical expressions are never
    removed (they carry the group structure).  ``search`` may be an
    existing best-plan search over this memo (its memoized table is
    reused); omitted, a fresh one is built.  ``root_order`` protects the
    root group's ORDER BY state the same way parent-imposed orders are.
    """
    if factor < 1.0:
        raise ValueError("pruning factor must be >= 1.0")
    if search is None:
        search = BestPlanSearch(memo, cost_model)
    best = search.best
    operator_cost = cost_model.operator_cost
    groups = memo.groups

    # Phase 0: the ordered contexts each group serves — exactly the
    # child requirements any physical operator imposes, plus ORDER BY.
    reqs_by_gid: dict[int, dict[tuple, None]] = {}
    for group in groups:
        for expr in group.exprs:
            if not expr.is_physical or expr.is_enforcer:
                continue
            op = expr.op
            if type(op).required_child_order is _NO_CHILD_ORDER:
                continue
            for child_pos, child_gid in enumerate(expr.children):
                required = op.required_child_order(child_pos)
                if required:
                    reqs_by_gid.setdefault(child_gid, {}).setdefault(required)
    if root_order and memo.root_group_id is not None:
        reqs_by_gid.setdefault(memo.root_group_id, {}).setdefault(
            tuple(root_order)
        )

    # Phase 1: decide survivors everywhere, mutating nothing — every
    # best() call below lands in (or fills) the shared memo table.
    survivors_by_gid: list[tuple[int, list]] = []
    removed = 0
    for group in groups:
        group_best = best(group.gid, ())
        if group_best is None:
            continue
        ordered_costs: list[tuple[tuple, float]] = []
        for required in reqs_by_gid.get(group.gid, ()):
            state_best = best(group.gid, required)
            if state_best is not None:
                ordered_costs.append((required, state_best.cost))
        cardinality = group.cardinality
        survivors = []
        dropped = 0
        for expr in group.exprs:
            if not expr.is_physical:
                survivors.append(expr)
                continue
            op = expr.op
            if expr.is_enforcer:
                # Enforcers root the group's order-free optimum.
                rooted = operator_cost(op, cardinality, (cardinality,))
                rooted += group_best.cost
            else:
                rooted = 0.0
                trivial_reqs = type(op).required_child_order is _NO_CHILD_ORDER
                for child_pos, child_gid in enumerate(expr.children):
                    child_best = best(
                        child_gid,
                        () if trivial_reqs else op.required_child_order(child_pos),
                    )
                    if child_best is None:
                        rooted = None
                        break
                    rooted += child_best.cost
                if rooted is not None:
                    rooted += operator_cost(
                        op,
                        cardinality,
                        tuple(
                            groups[cgid].cardinality for cgid in expr.children
                        ),
                    )
            if rooted is None:
                dropped += 1
                continue
            allowance = group_best.cost
            if ordered_costs and (
                type(op).delivered_order is not _NO_DELIVERED_ORDER
            ):
                delivered = op.delivered_order()
                if delivered:
                    for required, state_cost in ordered_costs:
                        if state_cost > allowance and order_satisfies(
                            delivered, required
                        ):
                            allowance = state_cost
            if rooted <= allowance * factor:
                survivors.append(expr)
            else:
                dropped += 1
        if dropped:
            survivors_by_gid.append((group.gid, survivors))
            removed += dropped

    # Phase 2: apply.  Mutation invalidates any columnar array store
    # still attached (its rows no longer describe the memo).
    if survivors_by_gid:
        for gid, survivors in survivors_by_gid:
            groups[gid].exprs[:] = survivors
        memo.columnar = None
    return removed
