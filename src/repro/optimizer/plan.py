"""Execution plans: trees of physical operators extracted from the memo.

A :class:`PlanNode` is a fully assembled plan — what the memo deliberately
does *not* store ("only the optimal plan is completely assembled",
Section 3).  Unranking produces these; the executor runs them; the cost
model prices them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.physical import PhysicalOperator

__all__ = ["PlanNode"]


@dataclass(frozen=True)
class PlanNode:
    """One operator of an assembled plan.

    ``group_id``/``local_id`` tie the node back to the memo expression it
    was extracted from (the paper's ``7.7``-style identifiers), which is
    what makes ranking (plan -> number) possible.
    ``cardinality`` is the optimizer's row estimate for the node's group.
    """

    op: PhysicalOperator
    children: tuple["PlanNode", ...]
    group_id: int
    local_id: int
    cardinality: float = 0.0

    def __post_init__(self) -> None:
        assert len(self.children) == self.op.arity, (
            f"{self.op.name} expects {self.op.arity} children, "
            f"got {len(self.children)}"
        )

    @property
    def expr_id(self) -> str:
        return f"{self.group_id}.{self.local_id}"

    def size(self) -> int:
        """Number of operators in the plan tree."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def fingerprint(self) -> tuple:
        """Canonical identity of the plan *as a tree of memo operators*.

        Two plans are the same iff they use the same memo expression at
        every position.
        """
        return (
            self.group_id,
            self.local_id,
            tuple(child.fingerprint() for child in self.children),
        )

    def iter_nodes(self):
        """Pre-order iteration over all nodes."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def operator_ids(self) -> list[str]:
        """The memo identifiers of all operators, pre-order (the paper's
        appendix reports unranked plans this way: "7.7, 4.3, 3.4, ...")."""
        return [node.expr_id for node in self.iter_nodes()]

    def render(self, indent: int = 0, with_ids: bool = True) -> str:
        pad = "  " * indent
        tag = f"  [{self.expr_id}]" if with_ids else ""
        lines = [f"{pad}{self.op.render()}{tag}"]
        for child in self.children:
            lines.append(child.render(indent + 1, with_ids))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
