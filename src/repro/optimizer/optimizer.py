"""The optimizer facade: SQL (or bound query) in, optimized memo out.

Runs the full pipeline the paper assumes: copy-in, exploration,
implementation (plus enforcers), cardinality annotation, best-plan
extraction — and hands the finished memo to the plan-space toolkit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError
from repro.memo.memo import Memo
from repro.obs.trace import active_tracer, phase as obs_phase
from repro.optimizer.annotate import annotate_cardinalities
from repro.kernel import selected_backend
from repro.optimizer.bestplan import (
    BestPlanSearch,
    ColumnarBestPlanSearch,
    find_best_plan,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.explorer import (
    DEFAULT_RULES,
    EnumerationExplorer,
    RuleSet,
    TransformationExplorer,
)
from repro.optimizer.implementation import (
    ColumnarUnsupported,
    ImplementationConfig,
    implement_memo,
    implement_memo_columnar,
)
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plan import PlanNode
from repro.optimizer.pruning import prune_memo
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import Binder, BoundQuery
from repro.sql.parser import parse
from repro.util.gcguard import paused_gc

__all__ = [
    "ExplorationStrategy",
    "OptimizerOptions",
    "OptimizationResult",
    "Optimizer",
]


def _detach_stale_stores(memo: Memo) -> None:
    """Drop incomplete columnar stores from the memo.

    A store whose build was interrupted never attaches (the builders set
    ``complete`` only on full success, and ``attach`` refuses otherwise),
    but a fault between attach and the phase's return — or deliberate
    corruption in the fault-injection matrix — could leave a broken store
    installed.  Resilience invariant: after any failed optimization the
    memo's columnar references are either complete or gone.
    """
    store = getattr(memo, "columnar", None)
    if store is not None and not getattr(store, "complete", False):
        memo.columnar = None
    logical = getattr(memo, "columnar_logical", None)
    if logical is not None and not getattr(logical, "complete", False):
        memo.columnar_logical = None


def _extract_best(search: BestPlanSearch, memo: Memo, required_order):
    """Root extraction from an existing (reusable) object search."""
    if memo.root_group_id is None:
        raise OptimizerError("memo has no root group")
    best = search.best(memo.root_group_id, required_order)
    if best is None:
        raise OptimizerError(
            "no physical plan satisfies the root requirement "
            "(are implementations/enforcers enabled?)"
        )
    return best.plan, best.cost


class ExplorationStrategy(enum.Enum):
    """How the logical search space is generated."""

    ENUMERATION = "enumeration"
    TRANSFORMATION = "transformation"


@dataclass(frozen=True)
class OptimizerOptions:
    """Knobs controlling the shape of the search space.

    ``allow_cross_products`` selects between the two spaces of the paper's
    Table 1.  ``pruning_factor`` (off by default, as the paper recommends
    for testing) applies cost-bound pruning after optimization.
    ``columnar`` selects the physical-memo representation for exact
    optimization: ``None`` (default) takes the struct-of-arrays columnar
    path whenever the memo supports it, falling back to the object path
    otherwise; ``False`` forces the object path (equivalence tests,
    ablations); ``True`` requires the columnar path and errors when it is
    unsupported.  ``batched_exploration`` is the same tri-state for the
    *logical* side (enumeration strategy only): ``None`` lets the
    explorer emit whole csg–cmp buckets into the columnar logical store
    when the memo supports it, ``False`` forces per-expression object
    inserts, ``True`` requires batching.
    """

    allow_cross_products: bool = False
    exploration: ExplorationStrategy = ExplorationStrategy.ENUMERATION
    rules: RuleSet = DEFAULT_RULES
    implementation: ImplementationConfig = field(default_factory=ImplementationConfig)
    cost_params: CostParameters = field(default_factory=CostParameters)
    pruning_factor: float | None = None
    columnar: bool | None = None
    batched_exploration: bool | None = None
    #: phase order: the default (None / True) annotates cardinalities
    #: right after exploration, then runs one fused implement+best-plan
    #: pass (a "fused" span with "implement" and "bestplan" sub-spans —
    #: implementation never reads cardinalities, so the reordering is
    #: observationally identical); False keeps the historical
    #: explore -> implement -> annotate -> bestplan order.
    fused: bool | None = None
    #: dominated-state pruning in the columnar DP (identical/empty
    #: candidate intervals collapse before the range scan); chosen
    #: plans and costs are identical either way.
    prune_dominated: bool = True


@dataclass
class OptimizationResult:
    """Everything produced by one optimizer run.

    The plan-space toolkit (:class:`repro.planspace.PlanSpace`) consumes
    ``memo`` + ``root_order``; the executor consumes plans; the experiment
    harness consumes ``best_cost`` for cost scaling.
    """

    memo: Memo
    query: BoundQuery
    graph: JoinGraph
    best_plan: PlanNode
    best_cost: float
    root_order: tuple
    cost_model: CostModel
    estimator: CardinalityEstimator
    options: OptimizerOptions
    timings: dict[str, float] = field(default_factory=dict)
    #: which physical-memo engine served: "columnar", "object", or (from
    #: the degradation ladder) "sampled" / "heuristic"
    engine: str = "columnar"
    #: why the fast path was not taken, when auto-selection fell back
    fallback_reason: str | None = None
    #: which kernel backend served the vectorized primitives:
    #: "numpy", "native", or "pure"
    kernel: str = "pure"
    #: columnar best-plan DP statistics (state and pruned-state counts);
    #: ``None`` on the object path
    dp_stats: dict | None = None
    #: :class:`repro.resilience.degrade.ResilienceReport` when the run
    #: went through a budgeted ``Session.optimize``; ``None`` otherwise
    resilience: object | None = None
    #: root :class:`repro.obs.trace.Span` when the run was traced
    #: (``Session.optimize(trace=True)`` / ``repro trace``); ``None``
    #: otherwise
    trace: object | None = None
    #: :class:`repro.obs.feedback.FeedbackReport` when the run re-costed
    #: under an execution-feedback ledger (``Session.optimize(sql,
    #: feedback=...)``); ``None`` otherwise
    feedback: object | None = None
    #: :class:`repro.serving.cache.CacheInfo` when the call went through
    #: a plan-cache-enabled session (hit tier, template age); ``None``
    #: otherwise
    cache: object | None = None

    def explain(self) -> str:
        """EXPLAIN-style description of the chosen plan."""
        lines = [
            f"best cost: {self.best_cost:,.1f}",
            self.best_plan.render(),
        ]
        return "\n".join(lines)


class Optimizer:
    """Cost-based optimizer over a catalog."""

    def __init__(self, catalog: Catalog, options: OptimizerOptions | None = None):
        self.catalog = catalog
        self.options = options if options is not None else OptimizerOptions()

    # ------------------------------------------------------------------
    def optimize_sql(
        self, sql: str, scope=None, ledger=None, artifacts=None
    ) -> OptimizationResult:
        """Parse, bind, and optimize one SELECT statement."""
        with obs_phase("parse"):
            statement = parse(sql)
        with obs_phase("bind"):
            bound = Binder(self.catalog).bind(statement)
        return self.optimize(bound, scope=scope, ledger=ledger, artifacts=artifacts)

    def optimize(
        self, query: BoundQuery, scope=None, ledger=None, artifacts=None
    ) -> OptimizationResult:
        """Optimize a bound query: returns the memo and the best plan.

        ``scope`` is an optional :class:`repro.resilience.budget.BudgetScope`
        consulted at checkpoints in every phase's hot loop; ``None`` (the
        default) skips the checkpoints entirely, so the unbudgeted path
        is unchanged.

        ``ledger`` is an optional
        :class:`~repro.obs.feedback.CardinalityLedger`: the annotate
        phase substitutes execution-observed cardinalities for every
        join-level group the ledger covers, so costing — and hence the
        chosen plan — reflects measured reality instead of the static
        estimate.  ``None`` (the default) is byte-identical to the
        historical path.

        ``artifacts`` is an optional
        :class:`~repro.serving.cache.TemplateArtifacts` bundle captured
        from a prior optimization of the same query template: the
        explore phase replays the cached logical store instead of
        enumerating (span ``explore.cached``), and implementation
        reuses the cached edge catalog.  A bundle that fails its
        consistency checks is ignored and the normal phases run.

        The cycle collector is paused for the duration: optimization
        allocates hundreds of thousands of short-lived tuples and memo
        expressions but no reference cycles (children are group *ids*),
        so generational GC passes only add pauses.  The pause is
        ref-counted (:func:`repro.util.gcguard.paused_gc`) so
        overlapping optimizations on sibling threads do not re-enable
        the collector for each other mid-flight.
        """
        with paused_gc():
            return self._optimize(
                query, scope=scope, ledger=ledger, artifacts=artifacts
            )

    def _optimize(
        self, query: BoundQuery, scope=None, ledger=None, artifacts=None
    ) -> OptimizationResult:
        opts = self.options
        timings: dict[str, float] = {}

        with obs_phase("setup") as span:
            setup = build_initial_memo(query, opts.allow_cross_products)
            memo, graph = setup.memo, setup.graph
        timings["setup"] = span.elapsed_s

        # Any interruption below (budget, cancellation, injected fault)
        # must not leave a half-built columnar store reachable through
        # the memo: detach anything incomplete before re-raising.  The
        # builders only attach *after* marking themselves complete, so
        # this is a backstop for corruption between attach and return.
        try:
            return self._optimize_phases(
                query,
                memo,
                graph,
                timings,
                scope=scope,
                ledger=ledger,
                artifacts=artifacts,
            )
        except BaseException:
            _detach_stale_stores(memo)
            raise

    def _explore_phase(self, memo, graph, timings, scope, traced, artifacts):
        """Exploration: replay cached template artifacts when available
        (span ``explore.cached``, no enumeration), otherwise run the
        configured explorer.  A replay that fails its consistency checks
        falls through to normal exploration — the memo is untouched
        beyond group creation either way."""
        opts = self.options
        replayed = False
        if (
            artifacts is not None
            and getattr(artifacts, "logical", None) is not None
            and opts.exploration is ExplorationStrategy.ENUMERATION
            and opts.batched_exploration is not False
        ):
            from repro.memo.columnar import (
                ColumnarUnsupported as _Unsupported,
                replay_logical_store,
            )

            with obs_phase("explore.cached") as span:
                try:
                    store = replay_logical_store(
                        memo, graph, opts.allow_cross_products, artifacts.logical
                    )
                except _Unsupported:
                    store = None
                else:
                    store.attach()
                    replayed = True
                if traced and replayed:
                    span.add("groups", len(memo.groups))
                    span.add("logical_exprs", memo.logical_expression_count())
            if replayed:
                timings["explore"] = span.elapsed_s
                # Non-float sentinel: rendered by no timing report, read
                # by the serving layer to label the cache tier honestly.
                timings["explore_source"] = "cached"
                return True
        with obs_phase("explore") as span:
            explorer = self._make_explorer()
            explorer.explore(memo, graph, opts.allow_cross_products, scope=scope)
            if traced:
                span.add("groups", len(memo.groups))
                span.add("logical_exprs", memo.logical_expression_count())
        timings["explore"] = span.elapsed_s
        return False

    def _optimize_phases(
        self,
        query: BoundQuery,
        memo: Memo,
        graph: JoinGraph,
        timings,
        scope=None,
        ledger=None,
        artifacts=None,
    ) -> OptimizationResult:
        opts = self.options
        traced = active_tracer() is not None
        fused = opts.fused is not False

        replayed = self._explore_phase(
            memo, graph, timings, scope, traced, artifacts
        )
        if not replayed:
            artifacts = None  # stale bundle: do not reuse its edges either

        cost_model = CostModel(self.catalog, opts.cost_params)

        if fused:
            # Fused order: annotate first (it reads only the logical
            # side, which exploration finished), then implementation and
            # the best-plan DP back to back under one span — the two
            # halves of the single-pass exact hot path, with the
            # columnar store handing its requirement stream and merge
            # state ids straight to the DP.
            estimator = self._annotate_phase(query, memo, graph, timings, ledger)
            with obs_phase("fused") as fspan:
                store, fallback_reason = self._implement_phase(
                    query, memo, graph, timings, scope, traced, artifacts
                )
                search, dp_stats, best_plan, best_cost = self._bestplan_phase(
                    query, memo, store, cost_model, timings, scope, traced
                )
            timings["fused"] = fspan.elapsed_s
        else:
            store, fallback_reason = self._implement_phase(
                query, memo, graph, timings, scope, traced, artifacts
            )
            estimator = self._annotate_phase(query, memo, graph, timings, ledger)
            search, dp_stats, best_plan, best_cost = self._bestplan_phase(
                query, memo, store, cost_model, timings, scope, traced
            )

        kernel = selected_backend()
        timings["kernel"] = kernel
        if dp_stats is not None:
            timings["pruned_states"] = dp_stats["pruned"]

        if opts.pruning_factor is not None:
            with obs_phase("prune") as span:
                # Reuse the best-plan search's memoized state table on the
                # object path (the columnar DP has no object-level table;
                # pruning materializes the memo and builds one).
                prune_memo(
                    memo,
                    cost_model,
                    opts.pruning_factor,
                    search=search,
                    root_order=query.order_by,
                )
            timings["prune"] = span.elapsed_s
            # The best plan always survives pruning (factor >= 1), but we
            # re-extract so node local_ids refer to surviving expressions.
            best_plan, best_cost = find_best_plan(
                memo, cost_model, required_order=query.order_by
            )

        return OptimizationResult(
            memo=memo,
            query=query,
            graph=graph,
            best_plan=best_plan,
            best_cost=best_cost,
            root_order=query.order_by,
            cost_model=cost_model,
            estimator=estimator,
            options=opts,
            timings=timings,
            engine="columnar" if store is not None else "object",
            fallback_reason=fallback_reason,
            kernel=kernel,
            dp_stats=dp_stats,
        )

    # ------------------------------------------------------------------
    def _implement_phase(
        self, query, memo, graph, timings, scope, traced, artifacts=None
    ):
        """Implementation: the columnar (struct-of-arrays) path by
        default — batched operator blocks, no GroupExpr objects — with
        the object path as the forced/fallback alternative.  Both
        produce the identical memo facade."""
        opts = self.options
        edges = None
        if artifacts is not None:
            edges = artifacts.take_edges(graph)
        with obs_phase("implement") as span:
            store = None
            fallback_reason: str | None = None
            if opts.columnar is not False:
                try:
                    store = implement_memo_columnar(
                        memo,
                        graph,
                        self.catalog,
                        opts.implementation,
                        root_order=query.order_by,
                        scope=scope,
                        edges=edges,
                    )
                except ColumnarUnsupported as exc:
                    if opts.columnar is True:
                        raise OptimizerError(
                            "columnar optimization was requested but this "
                            "memo does not support it"
                        ) from None
                    fallback_reason = str(exc)
            if store is None:
                if fallback_reason is None and opts.columnar is False:
                    fallback_reason = "columnar disabled by options"
                implement_memo(
                    memo,
                    self.catalog,
                    opts.implementation,
                    root_order=query.order_by,
                    scope=scope,
                )
            if traced:
                span.add("physical_exprs", memo.physical_expression_count())
        timings["implement"] = span.elapsed_s
        return store, fallback_reason

    def _annotate_phase(self, query, memo, graph, timings, ledger):
        traced = active_tracer() is not None
        with obs_phase("annotate") as span:
            estimator = CardinalityEstimator(self.catalog, query, ledger=ledger)
            annotate_cardinalities(memo, graph, estimator)
            if traced and estimator.feedback_hits:
                span.add("feedback_substituted", estimator.feedback_hits)
        timings["annotate"] = span.elapsed_s
        return estimator

    def _bestplan_phase(
        self, query, memo, store, cost_model, timings, scope, traced
    ):
        opts = self.options
        with obs_phase("bestplan") as span:
            search = None
            dp_stats = None
            if store is not None:
                dp = ColumnarBestPlanSearch(
                    store,
                    cost_model,
                    scope=scope,
                    prune_dominated=opts.prune_dominated,
                )
                best_plan, best_cost = dp.run().best_plan(query.order_by)
                dp_stats = dict(dp.stats)
                if traced:
                    span.add("states", dp_stats["states"])
                    span.add("pruned_states", dp_stats["pruned"])
            else:
                search = BestPlanSearch(memo, cost_model, scope=scope)
                best_plan, best_cost = _extract_best(
                    search, memo, required_order=query.order_by
                )
        timings["bestplan"] = span.elapsed_s
        return search, dp_stats, best_plan, best_cost

    # ------------------------------------------------------------------
    def _make_explorer(self):
        if self.options.exploration is ExplorationStrategy.ENUMERATION:
            return EnumerationExplorer(batched=self.options.batched_exploration)
        if self.options.exploration is ExplorationStrategy.TRANSFORMATION:
            return TransformationExplorer(self.options.rules)
        raise OptimizerError(
            f"unknown exploration strategy {self.options.exploration!r}"
        )
