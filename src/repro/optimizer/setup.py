"""Initial memo construction: copy the query's plan into the MEMO.

Mirrors the paper's Figure 1: the bound query is translated into an
initial tree of logical operators, every operator is assigned to a group,
and child links become group references.  The initial join shape is a
left-deep tree over the FROM order (re-ordered greedily to avoid Cartesian
products when those are disallowed); exploration then derives all other
shapes.

Above the join root we stack, as needed: a residual Select for constant
predicates, the Aggregate, and a final Project.  The Project is always
present — it pins the output column order so that every plan in the space
produces comparable results (the paper's Section 4 verification depends on
plans being result-equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import make_conjunction
from repro.algebra.logical import (
    LogicalAggregate,
    LogicalGet,
    LogicalProject,
    LogicalSelect,
)
from repro.errors import OptimizerError
from repro.memo.memo import Memo
from repro.optimizer.joingraph import JoinGraph
from repro.sql.binder import BoundQuery

__all__ = ["MemoSetup", "build_initial_memo"]


@dataclass
class MemoSetup:
    """The freshly seeded memo plus everything exploration needs."""

    memo: Memo
    graph: JoinGraph
    query: BoundQuery
    join_root_gid: int


def _initial_join_order(
    query: BoundQuery, graph: JoinGraph, allow_cross_products: bool
) -> list[str]:
    """The FROM-clause order, fixed up to avoid cross products if needed.

    With cross products disallowed, each next range variable must be
    connected to the prefix already joined; we greedily pick the first
    FROM entry that is (a disconnected query graph is reported as an
    error, since no such order exists).
    """
    aliases = [q.alias for q in query.quantifiers]
    if allow_cross_products or len(aliases) <= 1:
        return aliases
    remaining = list(aliases)
    order = [remaining.pop(0)]
    prefix = graph.mask_of(order)
    while remaining:
        for i, alias in enumerate(remaining):
            bit = graph.mask_of([alias])
            if graph.applicable_conjuncts_m(prefix, bit):
                order.append(remaining.pop(i))
                prefix |= bit
                break
        else:
            raise OptimizerError(
                "query join graph is disconnected; the space without "
                "Cartesian products is empty (enable allow_cross_products)"
            )
    return order


def build_initial_memo(
    query: BoundQuery, allow_cross_products: bool = True
) -> MemoSetup:
    """Seed a memo with the initial logical plan for ``query``."""
    graph = JoinGraph(
        aliases=query.aliases(), conjuncts=list(query.where_conjuncts)
    )
    memo = Memo(universe=graph.universe)

    # Leaf groups: one per range variable, with its pushed-down filter.
    for quantifier in query.quantifiers:
        group = memo.get_or_create_rels_group(graph.mask_of([quantifier.alias]))
        memo.insert(
            LogicalGet(
                table=quantifier.table,
                alias=quantifier.alias,
                predicate=query.pushed_filters.get(quantifier.alias),
            ),
            (),
            group,
        )

    # Initial left-deep join tree (Figure 1's copy-in).
    order = _initial_join_order(query, graph, allow_cross_products)
    prefix = graph.mask_of([order[0]])
    current_gid = memo.get_or_create_rels_group(prefix).gid
    for alias in order[1:]:
        right = graph.mask_of([alias])
        right_gid = memo.get_or_create_rels_group(right).gid
        combined = prefix | right
        group = memo.get_or_create_rels_group(combined)
        memo.insert(
            graph.join_operator_m(prefix, right), (current_gid, right_gid), group
        )
        current_gid = group.gid
        prefix = combined

    join_root_gid = current_gid
    top_gid = join_root_gid

    # Residual constant predicates (rare; e.g. WHERE 1 = 2).
    if graph.constant_conjuncts:
        predicate = make_conjunction(graph.constant_conjuncts)
        select_group = memo.get_or_create_group(
            ("select", top_gid, predicate.fingerprint()),
            memo.group(top_gid).relations,
            mask=memo.group(top_gid).mask,
        )
        memo.insert(LogicalSelect(predicate), (top_gid,), select_group)
        top_gid = select_group.gid

    if query.is_aggregate_query:
        agg_group = memo.get_or_create_group(
            ("agg", top_gid),
            memo.group(top_gid).relations,
            mask=memo.group(top_gid).mask,
        )
        memo.insert(
            LogicalAggregate(group_by=query.group_by, aggregates=query.aggregates),
            (top_gid,),
            agg_group,
        )
        top_gid = agg_group.gid

    project_group = memo.get_or_create_group(
        ("proj", top_gid),
        memo.group(top_gid).relations,
        mask=memo.group(top_gid).mask,
    )
    memo.insert(LogicalProject(outputs=query.select_outputs), (top_gid,), project_group)
    memo.set_root(project_group.gid)

    return MemoSetup(
        memo=memo, graph=graph, query=query, join_root_gid=join_root_gid
    )
