"""The cost-based optimizer (system S7).

Populates a MEMO with logical alternatives (join reordering via either
Volcano-style transformation rules or Starburst-style bottom-up
enumeration), derives physical implementations plus Sort enforcers,
estimates cardinalities, costs operators, and extracts the best plan —
everything the paper's plan-space toolkit assumes has already happened
when it takes over.
"""

from repro.optimizer.bitset import AliasUniverse
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plan import PlanNode
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.explain import explain_plan
from repro.optimizer.optimizer import (
    ExplorationStrategy,
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
)

__all__ = [
    "AliasUniverse",
    "JoinGraph",
    "PlanNode",
    "CardinalityEstimator",
    "CostModel",
    "CostParameters",
    "explain_plan",
    "ExplorationStrategy",
    "OptimizationResult",
    "Optimizer",
    "OptimizerOptions",
]
