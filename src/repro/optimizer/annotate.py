"""Attach cardinality estimates to memo groups.

Cardinality is a *logical* property: every expression in a group produces
the same rows, so the estimate lives on the group (as in Volcano/Cascades).
Groups are created children-first, so a single in-order pass suffices.

Execution feedback plugs in here: an optional
:class:`~repro.obs.feedback.CardinalityLedger` overrides the static
estimate of every join-level (``("rels", mask)``) group the ledger holds
an observation for — keyed by the relation bitmask, which is stable
across re-optimizations, unlike group ids.  Groups without an
observation keep their estimates, so a partially-populated ledger
degrades gracefully to the static path.
"""

from __future__ import annotations

from repro.algebra.logical import LogicalAggregate, LogicalSelect
from repro.errors import OptimizerError
from repro.memo.memo import Memo
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.joingraph import JoinGraph

__all__ = ["annotate_cardinalities"]


def annotate_cardinalities(
    memo: Memo, graph: JoinGraph, estimator: CardinalityEstimator, ledger=None
) -> int:
    """Fill ``group.cardinality`` for every group in ``memo``.

    ``ledger`` (optional) substitutes observed cardinalities for
    join-level groups the ledger covers; an estimator constructed with
    its own ledger performs the same substitution internally, so passing
    the ledger in either place is equivalent.  Returns the number of
    groups annotated from an observation rather than the estimate.
    """
    binding = (
        ledger.binding(graph.universe.order) if ledger is not None else None
    )
    substituted = 0
    for group in memo.groups:
        tag = group.key[0]
        if tag == "rels":
            if binding is not None:
                observed = binding.rows_for_mask(group.key[1])
                if observed is not None:
                    group.cardinality = observed
                    substituted += 1
                    continue
            # The key holds the alias mask; ``relations`` is the derived view.
            relations = group.relations
            if group.mask is not None:
                conjuncts = graph.internal_conjuncts_m(group.mask)
            else:
                conjuncts = graph.internal_conjuncts(relations)
            internal = [c.expr for c in conjuncts]
            before = estimator.feedback_hits
            group.cardinality = estimator.relation_set_cardinality(
                relations, internal
            )
            substituted += estimator.feedback_hits - before
        elif tag == "select":
            child = memo.group(group.key[1])
            predicate = _unary_op(group, LogicalSelect).predicate
            group.cardinality = estimator.select_cardinality(
                _require(child), predicate
            )
        elif tag == "agg":
            child = memo.group(group.key[1])
            op = _unary_op(group, LogicalAggregate)
            group.cardinality = estimator.aggregate_cardinality(
                _require(child), op.group_by
            )
        elif tag == "proj":
            child = memo.group(group.key[1])
            group.cardinality = _require(child)
        else:  # pragma: no cover - defensive
            raise OptimizerError(f"unknown group key tag {tag!r}")
    return substituted


def _require(group) -> float:
    if group.cardinality is None:
        raise OptimizerError(
            f"group {group.gid} has no cardinality (children must be annotated first)"
        )
    return group.cardinality


def _unary_op(group, cls):
    for expr in group.logical_exprs():
        if isinstance(expr.op, cls):
            return expr.op
    raise OptimizerError(
        f"group {group.gid} has no logical {cls.__name__} expression"
    )
