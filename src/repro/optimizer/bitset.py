"""Bitset encoding of alias sets.

Join enumeration spends almost all of its time asking set questions —
"is S connected?", "which conjuncts fall inside S?", "what neighbours
does S have?" — over subsets of a small, fixed universe: the query's
range-variable aliases.  Encoding those subsets as integer bitmasks turns
every one of these questions into a handful of machine-word operations
(``&``, ``|``, ``^``, ``bit_count``) and makes subsets perfect dict keys
(small ints hash in O(1), unlike ``frozenset[str]`` whose hash walks the
strings).

:class:`AliasUniverse` owns the interning: bit ``i`` is the ``i``-th
alias in sorted name order, so for any mask the numerically lowest bit is
the lexicographically smallest alias — a property the enumeration order
of :mod:`repro.optimizer.joingraph` relies on to reproduce the historical
(name-sorted) memo layout exactly.

The module-level helpers are the classic bit tricks of the join-ordering
literature (e.g. DPccp, Moerkotte & Neumann 2006): iterate the bits of a
mask, iterate all subsets of a mask via ``s = (s - 1) & mask``, take the
lowest set bit with ``mask & -mask``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import OptimizerError

__all__ = [
    "AliasUniverse",
    "iter_bits",
    "iter_subsets",
    "lowest_bit",
]


def lowest_bit(mask: int) -> int:
    """The lowest set bit of ``mask`` as a one-bit mask (0 for mask 0)."""
    return mask & -mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield each set bit of ``mask`` as a one-bit mask, ascending."""
    while mask:
        bit = mask & -mask
        yield bit
        mask ^= bit


def iter_subsets(mask: int) -> Iterator[int]:
    """Yield every non-empty subset of ``mask`` (including ``mask`` itself).

    Uses the standard descending-subset trick ``s = (s - 1) & mask``;
    subsets come out in decreasing numeric order.
    """
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


class AliasUniverse:
    """Interns a fixed set of alias names to bit positions (and back).

    Bit ``i`` corresponds to ``order[i]``, the ``i``-th alias in sorted
    name order.  Conversion back from masks to name sets is memoized —
    the optimizer converts at API boundaries only, and the same masks
    recur constantly (group keys, connectivity queries).
    """

    __slots__ = ("order", "size", "full_mask", "_bit_by_name", "_names_by_mask")

    def __init__(self, aliases: Iterable[str]):
        self.order: tuple[str, ...] = tuple(sorted(set(aliases)))
        if not self.order:
            raise OptimizerError("alias universe requires at least one alias")
        self.size: int = len(self.order)
        self.full_mask: int = (1 << self.size) - 1
        self._bit_by_name: dict[str, int] = {
            name: 1 << i for i, name in enumerate(self.order)
        }
        self._names_by_mask: dict[int, frozenset[str]] = {}

    # ------------------------------------------------------------------
    def bit(self, alias: str) -> int:
        """The one-bit mask of ``alias``; raises on unknown names."""
        try:
            return self._bit_by_name[alias]
        except KeyError:
            raise OptimizerError(f"unknown alias {alias!r}") from None

    def __contains__(self, alias: str) -> bool:
        return alias in self._bit_by_name

    def mask_of(self, aliases: Iterable[str]) -> int:
        """The mask covering ``aliases``."""
        mask = 0
        bit_by_name = self._bit_by_name
        try:
            for alias in aliases:
                mask |= bit_by_name[alias]
        except KeyError as exc:
            raise OptimizerError(f"unknown alias {exc.args[0]!r}") from None
        return mask

    def names(self, mask: int) -> frozenset[str]:
        """The alias set covered by ``mask`` (memoized)."""
        cached = self._names_by_mask.get(mask)
        if cached is None:
            if mask & ~self.full_mask:
                raise OptimizerError(
                    f"mask {mask:#x} has bits outside the {self.size}-alias universe"
                )
            order = self.order
            cached = frozenset(
                order[bit.bit_length() - 1] for bit in iter_bits(mask)
            )
            self._names_by_mask[mask] = cached
        return cached

    def sorted_names(self, mask: int) -> tuple[str, ...]:
        """Aliases of ``mask`` in name order (equals bit order)."""
        order = self.order
        return tuple(order[bit.bit_length() - 1] for bit in iter_bits(mask))

    def __len__(self) -> int:
        return self.size
