"""The cost model.

Abstract, unit-less work estimates in the style of textbook cost models:
scans pay per row scanned, hash operators pay to build and probe, sorts
pay ``n log n``, nested loops pay per pair.  Absolute values are not
comparable to the paper's (SQL Server's model is proprietary) — but the
paper's experiments only ever use costs *scaled to the optimum*, which is
exactly what our experiment harness reports too.

The one structural subtlety: a plan's cost is the sum of per-operator
costs, each computed from the *group* cardinalities of its inputs and
output.  Every plan for the same query therefore prices the same logical
sub-result identically, and plan costs differ only through operator and
shape choices — matching how the memo's costing works in the paper
("when costing a new operator we compute the costs using the children's
best implementations").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algebra.expressions import (
    ColumnId,
    ColumnRef,
    Comparison,
    InList,
    Literal,
    Scalar,
    split_conjuncts,
)
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalOperator,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)
from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError
from repro.optimizer.plan import PlanNode

__all__ = ["CostParameters", "CostModel"]


@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the cost model (per-row work factors)."""

    seq_row: float = 1.0
    index_row: float = 1.15
    index_probe_row: float = 2.0
    index_lookup: float = 12.0
    index_join_seek: float = 2.5
    filter_row: float = 0.05
    nlj_outer_row: float = 1.0
    nlj_pair: float = 0.25
    hash_build_row: float = 1.8
    hash_probe_row: float = 1.0
    join_output_row: float = 0.1
    merge_row: float = 1.0
    sort_row_log: float = 0.3
    hash_agg_row: float = 1.5
    stream_agg_row: float = 1.0
    group_output_row: float = 1.0
    project_row: float = 0.03


def _constrains_leading_key(predicate: Scalar | None, key: ColumnId) -> bool:
    """True if ``predicate`` has a sargable conjunct on the leading index
    key column (equality, range, or IN against a literal)."""
    for conjunct in split_conjuncts(predicate):
        if isinstance(conjunct, Comparison):
            sides = (conjunct.left, conjunct.right)
            for this, other in (sides, sides[::-1]):
                if (
                    isinstance(this, ColumnRef)
                    and this.column_id == key
                    and isinstance(other, Literal)
                ):
                    return True
        elif isinstance(conjunct, InList):
            if (
                isinstance(conjunct.arg, ColumnRef)
                and conjunct.arg.column_id == key
                and not conjunct.negated
            ):
                return True
    return False


class CostModel:
    """Prices physical operators and whole plans."""

    def __init__(self, catalog: Catalog, params: CostParameters | None = None):
        self.catalog = catalog
        self.params = params if params is not None else CostParameters()

    # ------------------------------------------------------------------
    def table_rows(self, table: str) -> float:
        return float(max(1, self.catalog.table_stats(table).row_count))

    def operator_cost(
        self,
        op: PhysicalOperator,
        output_rows: float,
        child_rows: tuple[float, ...],
    ) -> float:
        """Local cost of one operator (children's costs not included).

        Dispatches on the operator's concrete type via a lookup table —
        this is called once per physical expression in the memo, where an
        isinstance chain costs several failed checks per join.
        """
        formula = _FORMULAS.get(type(op))
        if formula is None:
            return self._operator_cost_generic(op, output_rows, child_rows)
        return formula(self, op, output_rows, child_rows)

    def _operator_cost_generic(
        self,
        op: PhysicalOperator,
        output_rows: float,
        child_rows: tuple[float, ...],
    ) -> float:
        """Fallback for operator subclasses not in the dispatch table."""
        for op_type, formula in _FORMULAS.items():
            if isinstance(op, op_type):
                return formula(self, op, output_rows, child_rows)
        raise OptimizerError(f"no cost formula for operator {op.name}")

    # -- per-operator formulas (bound through the dispatch table) -------
    def _cost_table_scan(self, op, output_rows, child_rows) -> float:
        return self.table_rows(op.table) * self.params.seq_row

    def _cost_index_scan(self, op, output_rows, child_rows) -> float:
        p = self.params
        base = self.table_rows(op.table)
        if _constrains_leading_key(op.predicate, op.key_order[0]):
            # Seek to the qualifying key range, then read matches.
            return p.index_lookup * math.log2(base + 1.0) + output_rows * p.index_probe_row
        return base * p.index_row

    def _cost_filter(self, op, output_rows, child_rows) -> float:
        return child_rows[0] * self.params.filter_row

    def _cost_nested_loop_join(self, op, output_rows, child_rows) -> float:
        p = self.params
        outer, inner = child_rows
        return outer * p.nlj_outer_row + outer * inner * p.nlj_pair

    def _cost_hash_join(self, op, output_rows, child_rows) -> float:
        p = self.params
        probe, build = child_rows
        return (
            build * p.hash_build_row
            + probe * p.hash_probe_row
            + output_rows * p.join_output_row
        )

    def _cost_merge_join(self, op, output_rows, child_rows) -> float:
        p = self.params
        left, right = child_rows
        return (left + right) * p.merge_row + output_rows * p.join_output_row

    def _cost_index_nl_join(self, op, output_rows, child_rows) -> float:
        p = self.params
        outer = child_rows[0]
        inner_base = self.table_rows(op.inner_table)
        seek = p.index_join_seek * math.log2(inner_base + 1.0)
        return outer * seek + output_rows * p.index_probe_row

    def _cost_sort(self, op, output_rows, child_rows) -> float:
        rows = child_rows[0]
        return rows * math.log2(rows + 2.0) * self.params.sort_row_log

    def _cost_hash_aggregate(self, op, output_rows, child_rows) -> float:
        p = self.params
        return child_rows[0] * p.hash_agg_row + output_rows * p.group_output_row

    def _cost_stream_aggregate(self, op, output_rows, child_rows) -> float:
        p = self.params
        return child_rows[0] * p.stream_agg_row + output_rows * p.group_output_row

    def _cost_project(self, op, output_rows, child_rows) -> float:
        return child_rows[0] * self.params.project_row * max(1, len(op.outputs))

    # ------------------------------------------------------------------
    def plan_cost(self, plan: PlanNode) -> float:
        """Total cost of an assembled plan (sum of operator costs).

        Iterative (explicit stack): a plan's cost is a sum of per-node
        local costs, so traversal order is irrelevant and deep chain-query
        plans cannot hit Python's recursion limit.
        """
        total = 0.0
        stack = [plan]
        operator_cost = self.operator_cost
        while stack:
            node = stack.pop()
            children = node.children
            total += operator_cost(
                node.op,
                node.cardinality,
                tuple(child.cardinality for child in children),
            )
            stack.extend(children)
        return total

    def plan_costs(self, plans: list[PlanNode]) -> list[float]:
        """Batch-cost many plans (the sampled-costing hot path).

        One entry point for pipelines that cost whole samples at a time —
        e.g. :mod:`repro.sampledopt` costs every sampled plan of a batch
        before consulting its stopping rule.
        """
        plan_cost = self.plan_cost
        return [plan_cost(plan) for plan in plans]


#: concrete operator type -> unbound cost formula (joins first in spirit:
#: they dominate every explored memo)
_FORMULAS = {
    NestedLoopJoin: CostModel._cost_nested_loop_join,
    HashJoin: CostModel._cost_hash_join,
    MergeJoin: CostModel._cost_merge_join,
    IndexNestedLoopJoin: CostModel._cost_index_nl_join,
    TableScan: CostModel._cost_table_scan,
    IndexScan: CostModel._cost_index_scan,
    PhysicalFilter: CostModel._cost_filter,
    Sort: CostModel._cost_sort,
    HashAggregate: CostModel._cost_hash_aggregate,
    StreamAggregate: CostModel._cost_stream_aggregate,
    PhysicalProject: CostModel._cost_project,
}
