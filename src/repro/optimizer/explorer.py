"""Exploration: derive all logical join alternatives.

Two interchangeable strategies populate the memo with every join shape the
search space admits:

* :class:`EnumerationExplorer` — Starburst-style bottom-up enumeration of
  connected-subgraph/complement pairs.  Guaranteed complete for both the
  cross-product and no-cross-product spaces; this is the default.
* :class:`TransformationExplorer` — Volcano/SQL-Server-style rule engine
  applying join commutativity, (left/right) associativity, and optionally
  the bushy exchange rule to a fixpoint, starting from the initial
  left-deep tree.

The paper notes its technique works regardless of how the memo was
populated ("could be transferred easily to the Starburst enumerator");
having both lets us test that claim directly (experiment E9).

Both strategies operate on alias *bitmasks* end-to-end (see
:mod:`repro.optimizer.joingraph` for the encoding): subset groups are
keyed ``("rels", mask)``, sub-goal unions are single ``|`` instructions,
and validity checks hit the join graph's memoized connectivity and
predicate tables.  The enumeration explorer walks the join graph's
csg–cmp partition stream, so in the no-cross-products space no invalid
split is ever materialized, let alone re-checked — the optimization that
makes memo population linear in the size of the valid search space rather
than in ``Σ 2^|S|``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.algebra.logical import LogicalJoin
from repro.errors import OptimizerError
from repro.memo.group import Group, GroupExpr
from repro.memo.memo import Memo
from repro.optimizer.joingraph import JoinGraph
from repro.resilience.faults import fault_point

__all__ = [
    "EnumerationExplorer",
    "TransformationExplorer",
    "RuleSet",
    "RULE_COMMUTATIVITY",
    "RULE_ASSOCIATIVITY_LEFT",
    "RULE_ASSOCIATIVITY_RIGHT",
    "RULE_EXCHANGE",
    "DEFAULT_RULES",
]


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _valid_join_m(
    graph: JoinGraph, left: int, right: int, allow_cross_products: bool
) -> bool:
    """May the mask sides be joined under the cross-product policy?"""
    if allow_cross_products:
        return True
    if graph.join_predicate_m(left, right) is None:
        return False
    return graph.is_connected_m(left) and graph.is_connected_m(right)


def _insert_join_m(
    memo: Memo, graph: JoinGraph, left: int, right: int
) -> GroupExpr | None:
    """Insert the canonical join of the mask partition into its group."""
    group = memo.get_or_create_rels_group(left | right)
    left_group = memo.group_for_mask(left)
    right_group = memo.group_for_mask(right)
    if left_group is None or right_group is None:
        raise OptimizerError("join children must be registered before the join")
    return memo.insert(
        graph.join_operator_m(left, right),
        (left_group.gid, right_group.gid),
        group,
    )


def _group_mask(group: Group, graph: JoinGraph) -> int:
    """The group's alias mask (derived on the fly for legacy memos)."""
    if group.mask is not None:
        return group.mask
    return graph.mask_of(group.relations)


# ----------------------------------------------------------------------
# bottom-up enumeration
# ----------------------------------------------------------------------
class EnumerationExplorer:
    """Bottom-up generation of every valid subset partition.

    For every alias subset (connected subsets only, when cross products are
    off) of size >= 2, in ascending size order, insert one logical join per
    valid ordered partition of the subset.  Partitions come straight from
    the join graph's csg–cmp enumeration as mask pairs, and child groups
    are resolved by mask key — the hot loop never touches an alias name.
    The resulting memo contains the complete bushy search space.

    ``batched`` selects the memo representation: ``None`` (default) emits
    whole per-subset buckets into the columnar logical store
    (:func:`repro.memo.columnar.build_logical_store`) whenever the memo
    supports it — no per-expression ``memo.insert``, ``Group.exprs``
    rebuilds the identical ``GroupExpr`` list lazily — falling back to
    the object loop otherwise; ``False`` forces the object loop
    (equivalence tests, ablations); ``True`` requires the batched path
    and errors when it is unsupported.  Both paths produce byte-identical
    memos — group ids, expression order, local ids, renders.
    """

    name = "enumeration"

    def __init__(self, batched: bool | None = None):
        self.batched = batched

    def explore(
        self, memo: Memo, graph: JoinGraph, allow_cross_products: bool, scope=None
    ) -> int:
        if self.batched is not False:
            # Deferred import: repro.memo.columnar reaches back into
            # repro.optimizer.rules.
            from repro.memo.columnar import (
                ColumnarUnsupported,
                build_logical_store,
            )

            try:
                store = build_logical_store(
                    memo, graph, allow_cross_products, scope=scope
                )
            except ColumnarUnsupported as exc:
                if self.batched is True:
                    raise OptimizerError(
                        f"batched exploration was requested but this memo "
                        f"does not support it: {exc}"
                    ) from None
            else:
                store.attach()
                return store.expression_total()
        return self._explore_objects(memo, graph, allow_cross_products, scope=scope)

    def _explore_objects(
        self, memo: Memo, graph: JoinGraph, allow_cross_products: bool, scope=None
    ) -> int:
        inserted = 0
        universe, buckets = graph.enumeration_universe(allow_cross_products)
        get_group = memo.get_or_create_rels_group
        group_for_mask = memo.group_for_mask
        insert = memo.insert
        join_operator = graph.join_operator_m
        checkpoint = scope.checkpoint if scope is not None else None
        last_inserted = 0
        for subset in universe:
            if subset.bit_count() < 2:
                continue
            fault_point("explore.object", memo)
            if checkpoint is not None:
                checkpoint("explore.object", inserted - last_inserted)
                last_inserted = inserted
            # Materialize the group even if some partition orders repeat
            # expressions already seeded by the initial plan.
            group = get_group(subset)
            if buckets is None:
                splits = graph.cross_splits_m(subset)
            else:
                splits = buckets.get(subset, ())
            for left, right in splits:
                left_group = group_for_mask(left)
                right_group = group_for_mask(right)
                if left_group is None or right_group is None:
                    raise OptimizerError(
                        "join children must be registered before the join"
                    )
                op = join_operator(left, right)
                children = (left_group.gid, right_group.gid)
                if insert(op, children, group) is not None:
                    inserted += 1
                if insert(op, (children[1], children[0]), group) is not None:
                    inserted += 1
        return inserted


# ----------------------------------------------------------------------
# transformation rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuleSet:
    """Which transformation rules the rule engine applies."""

    commutativity: bool = True
    associativity_left: bool = True
    associativity_right: bool = True
    exchange: bool = True

    def describe(self) -> str:
        names = []
        if self.commutativity:
            names.append("commute")
        if self.associativity_left:
            names.append("assoc-left")
        if self.associativity_right:
            names.append("assoc-right")
        if self.exchange:
            names.append("exchange")
        return "+".join(names) if names else "(none)"


RULE_COMMUTATIVITY = RuleSet(False, False, False, False)
RULE_ASSOCIATIVITY_LEFT = RuleSet(False, True, False, False)
RULE_ASSOCIATIVITY_RIGHT = RuleSet(False, False, True, False)
RULE_EXCHANGE = RuleSet(False, False, False, True)
DEFAULT_RULES = RuleSet()


class TransformationExplorer:
    """Volcano-style rule engine: apply rules to a fixpoint.

    Every logical join expression is kept on a work queue; applying a rule
    may create new expressions (possibly in new groups), which are queued
    in turn.  The memo's duplicate detection guarantees termination: the
    expression universe for a fixed query is finite.  Rule pattern sides
    are alias masks, so validity checks (connectivity, linking predicate)
    are memoized mask lookups.
    """

    name = "transformation"

    def __init__(self, rules: RuleSet | None = None):
        self.rules = rules if rules is not None else DEFAULT_RULES

    # ------------------------------------------------------------------
    def explore(
        self, memo: Memo, graph: JoinGraph, allow_cross_products: bool, scope=None
    ) -> int:
        queue: deque[GroupExpr] = deque()
        for group in memo.groups:
            for expr in group.logical_exprs():
                if isinstance(expr.op, LogicalJoin):
                    queue.append(expr)
        inserted = 0
        checkpoint = scope.checkpoint if scope is not None else None
        while queue:
            expr = queue.popleft()
            new_exprs = self._apply_rules(expr, memo, graph, allow_cross_products)
            inserted += len(new_exprs)
            queue.extend(new_exprs)
            if checkpoint is not None:
                checkpoint("explore.object", len(new_exprs))
        return inserted

    # ------------------------------------------------------------------
    def _apply_rules(
        self,
        expr: GroupExpr,
        memo: Memo,
        graph: JoinGraph,
        allow_cross: bool,
    ) -> list[GroupExpr]:
        out: list[GroupExpr] = []
        left_group = memo.group(expr.children[0])
        right_group = memo.group(expr.children[1])
        left = _group_mask(left_group, graph)
        right = _group_mask(right_group, graph)

        if self.rules.commutativity:
            new = _insert_join_m(memo, graph, right, left)
            if new is not None:
                out.append(new)

        if self.rules.associativity_left:
            # join(join(A, B), C) -> join(A, join(B, C))
            for inner in self._join_exprs(left_group):
                a = _group_mask(memo.group(inner.children[0]), graph)
                b = _group_mask(memo.group(inner.children[1]), graph)
                out.extend(
                    self._compose(memo, graph, a, b, right, allow_cross)
                )

        if self.rules.associativity_right:
            # join(A, join(B, C)) -> join(join(A, B), C)
            for inner in self._join_exprs(right_group):
                b = _group_mask(memo.group(inner.children[0]), graph)
                c = _group_mask(memo.group(inner.children[1]), graph)
                out.extend(
                    self._compose_left(memo, graph, left, b, c, allow_cross)
                )

        if self.rules.exchange:
            # join(join(A, B), join(C, D)) -> join(join(A, C), join(B, D))
            for outer_left in self._join_exprs(left_group):
                a = _group_mask(memo.group(outer_left.children[0]), graph)
                b = _group_mask(memo.group(outer_left.children[1]), graph)
                for outer_right in self._join_exprs(right_group):
                    c = _group_mask(memo.group(outer_right.children[0]), graph)
                    d = _group_mask(memo.group(outer_right.children[1]), graph)
                    out.extend(
                        self._exchange(memo, graph, a, b, c, d, allow_cross)
                    )
        return out

    @staticmethod
    def _join_exprs(group: Group) -> list[GroupExpr]:
        return [
            e for e in group.logical_exprs() if isinstance(e.op, LogicalJoin)
        ]

    def _compose(
        self,
        memo: Memo,
        graph: JoinGraph,
        a: int,
        b: int,
        c: int,
        allow_cross: bool,
    ) -> list[GroupExpr]:
        """Emit join(A, join(B, C)) if both joins are valid."""
        out = []
        if _valid_join_m(graph, b, c, allow_cross) and _valid_join_m(
            graph, a, b | c, allow_cross
        ):
            inner = _insert_join_m(memo, graph, b, c)
            if inner is not None:
                out.append(inner)
            outer = _insert_join_m(memo, graph, a, b | c)
            if outer is not None:
                out.append(outer)
        return out

    def _compose_left(
        self,
        memo: Memo,
        graph: JoinGraph,
        a: int,
        b: int,
        c: int,
        allow_cross: bool,
    ) -> list[GroupExpr]:
        """Emit join(join(A, B), C) if both joins are valid."""
        out = []
        if _valid_join_m(graph, a, b, allow_cross) and _valid_join_m(
            graph, a | b, c, allow_cross
        ):
            inner = _insert_join_m(memo, graph, a, b)
            if inner is not None:
                out.append(inner)
            outer = _insert_join_m(memo, graph, a | b, c)
            if outer is not None:
                out.append(outer)
        return out

    def _exchange(
        self,
        memo: Memo,
        graph: JoinGraph,
        a: int,
        b: int,
        c: int,
        d: int,
        allow_cross: bool,
    ) -> list[GroupExpr]:
        out = []
        if (
            _valid_join_m(graph, a, c, allow_cross)
            and _valid_join_m(graph, b, d, allow_cross)
            and _valid_join_m(graph, a | c, b | d, allow_cross)
        ):
            first = _insert_join_m(memo, graph, a, c)
            if first is not None:
                out.append(first)
            second = _insert_join_m(memo, graph, b, d)
            if second is not None:
                out.append(second)
            outer = _insert_join_m(memo, graph, a | c, b | d)
            if outer is not None:
                out.append(outer)
        return out
