"""Exploration: derive all logical join alternatives.

Two interchangeable strategies populate the memo with every join shape the
search space admits:

* :class:`EnumerationExplorer` — Starburst-style bottom-up enumeration of
  connected-subgraph/complement pairs.  Guaranteed complete for both the
  cross-product and no-cross-product spaces; this is the default.
* :class:`TransformationExplorer` — Volcano/SQL-Server-style rule engine
  applying join commutativity, (left/right) associativity, and optionally
  the bushy exchange rule to a fixpoint, starting from the initial
  left-deep tree.

The paper notes its technique works regardless of how the memo was
populated ("could be transferred easily to the Starburst enumerator");
having both lets us test that claim directly (experiment E9).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.algebra.logical import LogicalJoin
from repro.errors import OptimizerError
from repro.memo.group import Group, GroupExpr
from repro.memo.memo import Memo
from repro.optimizer.joingraph import JoinGraph

__all__ = [
    "EnumerationExplorer",
    "TransformationExplorer",
    "RuleSet",
    "RULE_COMMUTATIVITY",
    "RULE_ASSOCIATIVITY_LEFT",
    "RULE_ASSOCIATIVITY_RIGHT",
    "RULE_EXCHANGE",
    "DEFAULT_RULES",
]


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _valid_join(
    graph: JoinGraph,
    left: frozenset[str],
    right: frozenset[str],
    allow_cross_products: bool,
) -> bool:
    """May ``left`` and ``right`` be joined under the cross-product policy?"""
    if allow_cross_products:
        return True
    if not graph.applicable_conjuncts(left, right):
        return False
    return graph.is_connected(left) and graph.is_connected(right)


def _insert_join(
    memo: Memo,
    graph: JoinGraph,
    left: frozenset[str],
    right: frozenset[str],
) -> GroupExpr | None:
    """Insert the canonical join of (left, right) into its subset group."""
    combined = left | right
    group = memo.get_or_create_group(("rels", combined), combined)
    left_group = memo.group_for_relations(left)
    right_group = memo.group_for_relations(right)
    if left_group is None or right_group is None:
        raise OptimizerError("join children must be registered before the join")
    predicate = graph.join_predicate(left, right)
    return memo.insert(
        LogicalJoin(predicate), (left_group.gid, right_group.gid), group
    )


# ----------------------------------------------------------------------
# bottom-up enumeration
# ----------------------------------------------------------------------
class EnumerationExplorer:
    """Bottom-up generation of every valid subset partition.

    For every alias subset (connected subsets only, when cross products are
    off) of size >= 2, in ascending size order, insert one logical join per
    valid ordered partition of the subset.  The resulting memo contains the
    complete bushy search space.
    """

    name = "enumeration"

    def explore(
        self, memo: Memo, graph: JoinGraph, allow_cross_products: bool
    ) -> int:
        inserted = 0
        if allow_cross_products:
            universe = graph.all_subsets()
        else:
            universe = graph.connected_subsets()
        for subset in universe:
            if len(subset) < 2:
                continue
            # Materialize the group even if some partition orders repeat
            # expressions already seeded by the initial plan.
            memo.get_or_create_group(("rels", subset), subset)
            for left, right in graph.partitions(subset, allow_cross_products):
                if _insert_join(memo, graph, left, right) is not None:
                    inserted += 1
        return inserted


# ----------------------------------------------------------------------
# transformation rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuleSet:
    """Which transformation rules the rule engine applies."""

    commutativity: bool = True
    associativity_left: bool = True
    associativity_right: bool = True
    exchange: bool = True

    def describe(self) -> str:
        names = []
        if self.commutativity:
            names.append("commute")
        if self.associativity_left:
            names.append("assoc-left")
        if self.associativity_right:
            names.append("assoc-right")
        if self.exchange:
            names.append("exchange")
        return "+".join(names) if names else "(none)"


RULE_COMMUTATIVITY = RuleSet(False, False, False, False)
RULE_ASSOCIATIVITY_LEFT = RuleSet(False, True, False, False)
RULE_ASSOCIATIVITY_RIGHT = RuleSet(False, False, True, False)
RULE_EXCHANGE = RuleSet(False, False, False, True)
DEFAULT_RULES = RuleSet()


class TransformationExplorer:
    """Volcano-style rule engine: apply rules to a fixpoint.

    Every logical join expression is kept on a work queue; applying a rule
    may create new expressions (possibly in new groups), which are queued
    in turn.  The memo's duplicate detection guarantees termination: the
    expression universe for a fixed query is finite.
    """

    name = "transformation"

    def __init__(self, rules: RuleSet | None = None):
        self.rules = rules if rules is not None else DEFAULT_RULES

    # ------------------------------------------------------------------
    def explore(
        self, memo: Memo, graph: JoinGraph, allow_cross_products: bool
    ) -> int:
        queue: deque[GroupExpr] = deque()
        for group in memo.groups:
            for expr in group.logical_exprs():
                if isinstance(expr.op, LogicalJoin):
                    queue.append(expr)
        inserted = 0
        while queue:
            expr = queue.popleft()
            for new_expr in self._apply_rules(expr, memo, graph, allow_cross_products):
                inserted += 1
                queue.append(new_expr)
        return inserted

    # ------------------------------------------------------------------
    def _apply_rules(
        self,
        expr: GroupExpr,
        memo: Memo,
        graph: JoinGraph,
        allow_cross: bool,
    ) -> list[GroupExpr]:
        out: list[GroupExpr] = []
        left_group = memo.group(expr.children[0])
        right_group = memo.group(expr.children[1])
        left, right = left_group.relations, right_group.relations

        if self.rules.commutativity:
            new = _insert_join(memo, graph, right, left)
            if new is not None:
                out.append(new)

        if self.rules.associativity_left:
            # join(join(A, B), C) -> join(A, join(B, C))
            for inner in self._join_exprs(left_group):
                a = memo.group(inner.children[0]).relations
                b = memo.group(inner.children[1]).relations
                out.extend(
                    self._compose(memo, graph, a, b, right, allow_cross)
                )

        if self.rules.associativity_right:
            # join(A, join(B, C)) -> join(join(A, B), C)
            for inner in self._join_exprs(right_group):
                b = memo.group(inner.children[0]).relations
                c = memo.group(inner.children[1]).relations
                out.extend(
                    self._compose_left(memo, graph, left, b, c, allow_cross)
                )

        if self.rules.exchange:
            # join(join(A, B), join(C, D)) -> join(join(A, C), join(B, D))
            for outer_left in self._join_exprs(left_group):
                a = memo.group(outer_left.children[0]).relations
                b = memo.group(outer_left.children[1]).relations
                for outer_right in self._join_exprs(right_group):
                    c = memo.group(outer_right.children[0]).relations
                    d = memo.group(outer_right.children[1]).relations
                    out.extend(
                        self._exchange(memo, graph, a, b, c, d, allow_cross)
                    )
        return out

    @staticmethod
    def _join_exprs(group: Group) -> list[GroupExpr]:
        return [
            e for e in group.logical_exprs() if isinstance(e.op, LogicalJoin)
        ]

    def _compose(
        self,
        memo: Memo,
        graph: JoinGraph,
        a: frozenset[str],
        b: frozenset[str],
        c: frozenset[str],
        allow_cross: bool,
    ) -> list[GroupExpr]:
        """Emit join(A, join(B, C)) if both joins are valid."""
        out = []
        if _valid_join(graph, b, c, allow_cross) and _valid_join(
            graph, a, b | c, allow_cross
        ):
            inner = _insert_join(memo, graph, b, c)
            if inner is not None:
                out.append(inner)
            outer = _insert_join(memo, graph, a, b | c)
            if outer is not None:
                out.append(outer)
        return out

    def _compose_left(
        self,
        memo: Memo,
        graph: JoinGraph,
        a: frozenset[str],
        b: frozenset[str],
        c: frozenset[str],
        allow_cross: bool,
    ) -> list[GroupExpr]:
        """Emit join(join(A, B), C) if both joins are valid."""
        out = []
        if _valid_join(graph, a, b, allow_cross) and _valid_join(
            graph, a | b, c, allow_cross
        ):
            inner = _insert_join(memo, graph, a, b)
            if inner is not None:
                out.append(inner)
            outer = _insert_join(memo, graph, a | b, c)
            if outer is not None:
                out.append(outer)
        return out

    def _exchange(
        self,
        memo: Memo,
        graph: JoinGraph,
        a: frozenset[str],
        b: frozenset[str],
        c: frozenset[str],
        d: frozenset[str],
        allow_cross: bool,
    ) -> list[GroupExpr]:
        out = []
        if (
            _valid_join(graph, a, c, allow_cross)
            and _valid_join(graph, b, d, allow_cross)
            and _valid_join(graph, a | c, b | d, allow_cross)
        ):
            first = _insert_join(memo, graph, a, c)
            if first is not None:
                out.append(first)
            second = _insert_join(memo, graph, b, d)
            if second is not None:
                out.append(second)
            outer = _insert_join(memo, graph, a | c, b | d)
            if outer is not None:
                out.append(outer)
        return out
