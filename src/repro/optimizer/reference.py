"""Reference (slow-path) join enumeration, retained for equivalence testing.

This module preserves the original ``frozenset[str]``-based generate-and-
test algorithms that :mod:`repro.optimizer.joingraph` and
:mod:`repro.optimizer.explorer` replaced with bitmask csg–cmp enumeration.
It is deliberately *not* optimized: its value is that it is small enough
to audit by eye, and that property tests can assert the fast path produces
exactly the same search space — same connected subsets, same valid
partitions, same memo group/expression counts — on every query shape.

Nothing in the production pipeline imports this module.
"""

from __future__ import annotations

from repro.algebra.logical import LogicalJoin
from repro.errors import OptimizerError
from repro.memo.memo import Memo
from repro.optimizer.joingraph import JoinGraph

__all__ = [
    "reference_components",
    "reference_is_connected",
    "reference_partitions",
    "reference_connected_subsets",
    "reference_all_subsets",
    "ReferenceEnumerationExplorer",
]


def _conjunct_sets(graph: JoinGraph) -> list[frozenset[str]]:
    return [c.aliases for c in graph.conjuncts]


def _applicable(
    graph: JoinGraph, left: frozenset[str], right: frozenset[str]
) -> bool:
    combined = left | right
    for conjunct in graph.conjuncts:
        aliases = conjunct.aliases
        if aliases <= combined and not aliases <= left and not aliases <= right:
            return True
    return False


def reference_components(
    graph: JoinGraph, subset: frozenset[str]
) -> list[frozenset[str]]:
    """Connected components of the induced sub-hypergraph (seed algorithm)."""
    remaining = set(subset)
    applicable = [s for s in _conjunct_sets(graph) if s <= subset]
    out: list[frozenset[str]] = []
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        changed = True
        while changed:
            changed = False
            for edge in applicable:
                if edge & component and not edge <= component:
                    component |= edge & subset
                    changed = True
        out.append(frozenset(component))
        remaining -= component
    return out


def reference_is_connected(graph: JoinGraph, subset: frozenset[str]) -> bool:
    if not subset:
        return False
    if len(subset) == 1:
        return True
    return len(reference_components(graph, subset)) == 1


def reference_partitions(
    graph: JoinGraph, subset: frozenset[str], allow_cross_products: bool
) -> list[tuple[frozenset[str], frozenset[str]]]:
    """All valid ordered partitions, by exhaustive generate-and-test over
    the ``2^(n-1)`` unordered splits (seed algorithm and seed order)."""
    members = sorted(subset)
    n = len(members)
    if n < 2:
        return []
    out: list[tuple[frozenset[str], frozenset[str]]] = []
    for mask in range(0, (1 << (n - 1)) - 1):
        left = frozenset(
            [members[0]]
            + [members[i + 1] for i in range(n - 1) if mask & (1 << i)]
        )
        right = subset - left
        if not allow_cross_products:
            if not _applicable(graph, left, right):
                continue
            if not (
                reference_is_connected(graph, left)
                and reference_is_connected(graph, right)
            ):
                continue
        out.append((left, right))
        out.append((right, left))
    return out


def reference_all_subsets(graph: JoinGraph) -> list[frozenset[str]]:
    members = sorted(graph.aliases)
    subsets = []
    for mask in range(1, 1 << len(members)):
        subsets.append(
            frozenset(m for i, m in enumerate(members) if mask & (1 << i))
        )
    subsets.sort(key=lambda s: (len(s), tuple(sorted(s))))
    return subsets


def reference_connected_subsets(graph: JoinGraph) -> list[frozenset[str]]:
    return [
        s for s in reference_all_subsets(graph) if reference_is_connected(graph, s)
    ]


class ReferenceEnumerationExplorer:
    """The seed bottom-up enumeration, verbatim: generate-and-test over
    frozenset alias sets, groups keyed by whatever the memo provides."""

    name = "reference-enumeration"

    def explore(
        self, memo: Memo, graph: JoinGraph, allow_cross_products: bool
    ) -> int:
        inserted = 0
        if allow_cross_products:
            universe = reference_all_subsets(graph)
        else:
            universe = reference_connected_subsets(graph)
        for subset in universe:
            if len(subset) < 2:
                continue
            group = memo.get_or_create_group(
                ("rels", memo.universe.mask_of(subset))
                if memo.universe is not None
                else ("rels", subset),
                subset,
                mask=memo.universe.mask_of(subset)
                if memo.universe is not None
                else None,
            )
            for left, right in reference_partitions(
                graph, subset, allow_cross_products
            ):
                left_group = memo.group_for_relations(left)
                right_group = memo.group_for_relations(right)
                if left_group is None or right_group is None:
                    raise OptimizerError(
                        "join children must be registered before the join"
                    )
                predicate = graph.join_predicate(left, right)
                if (
                    memo.insert(
                        LogicalJoin(predicate),
                        (left_group.gid, right_group.gid),
                        group,
                    )
                    is not None
                ):
                    inserted += 1
        return inserted
