"""The join hypergraph: which predicates connect which range variables.

Join reordering — by transformation rules or bottom-up enumeration — needs
one canonical answer to "what is the predicate of a join between alias
sets S1 and S2?".  We derive it from the query's conjunct list: a conjunct
*applies* to the join (S1, S2) when its referenced aliases fall within
S1 ∪ S2 but not within either side alone.  Because the predicate is a
function of the two alias sets, every transformation path that produces a
join of the same sides produces an *identical* operator, which is what
makes memo duplicate detection exact.

The same structure answers connectivity questions: the subgraph induced by
an alias set S (using only conjuncts fully inside S) must be connected for
S to be a valid sub-goal when Cartesian products are disallowed — the
distinction behind the two halves of the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import Scalar, make_conjunction
from repro.errors import OptimizerError

__all__ = ["Conjunct", "JoinGraph"]


@dataclass(frozen=True)
class Conjunct:
    """One WHERE conjunct with its referenced alias set."""

    expr: Scalar
    aliases: frozenset[str]


class JoinGraph:
    """Aliases plus multi-table conjuncts, with connectivity helpers."""

    def __init__(self, aliases: frozenset[str], conjuncts: list[Scalar]):
        if not aliases:
            raise OptimizerError("join graph requires at least one alias")
        self.aliases = frozenset(aliases)
        self.conjuncts: list[Conjunct] = []
        self.constant_conjuncts: list[Scalar] = []
        for expr in conjuncts:
            referenced = frozenset(c.alias for c in expr.references())
            unknown = referenced - self.aliases
            if unknown:
                raise OptimizerError(
                    f"conjunct {expr.render()} references unknown aliases {sorted(unknown)}"
                )
            if not referenced:
                self.constant_conjuncts.append(expr)
            else:
                self.conjuncts.append(Conjunct(expr, referenced))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def applicable_conjuncts(
        self, left: frozenset[str], right: frozenset[str]
    ) -> list[Scalar]:
        """Conjuncts that become evaluable at the join of ``left`` and
        ``right`` (and were not evaluable below it)."""
        combined = left | right
        out = []
        for conjunct in self.conjuncts:
            if (
                conjunct.aliases <= combined
                and not conjunct.aliases <= left
                and not conjunct.aliases <= right
            ):
                out.append(conjunct.expr)
        return out

    def join_predicate(
        self, left: frozenset[str], right: frozenset[str]
    ) -> Scalar | None:
        """The canonical join predicate for the partition (left, right)."""
        return make_conjunction(self.applicable_conjuncts(left, right))

    def internal_conjuncts(self, subset: frozenset[str]) -> list[Conjunct]:
        """Conjuncts whose references fall entirely inside ``subset``."""
        return [c for c in self.conjuncts if c.aliases <= subset]

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def components(self, subset: frozenset[str]) -> list[frozenset[str]]:
        """Connected components of the hypergraph induced by ``subset``."""
        remaining = set(subset)
        applicable = [c.aliases for c in self.internal_conjuncts(subset)]
        out: list[frozenset[str]] = []
        while remaining:
            seed = next(iter(remaining))
            component = {seed}
            changed = True
            while changed:
                changed = False
                for edge in applicable:
                    if edge & component and not edge <= component:
                        component |= edge & subset
                        changed = True
            out.append(frozenset(component))
            remaining -= component
        return out

    def is_connected(self, subset: frozenset[str]) -> bool:
        if not subset:
            return False
        if len(subset) == 1:
            return True
        return len(self.components(subset)) == 1

    def neighbors(self, subset: frozenset[str]) -> frozenset[str]:
        """Aliases outside ``subset`` reachable by one conjunct that touches
        ``subset`` (used by connected-subgraph enumeration)."""
        out: set[str] = set()
        for conjunct in self.conjuncts:
            if conjunct.aliases & subset:
                out |= conjunct.aliases - subset
        return frozenset(out)

    # ------------------------------------------------------------------
    # partition enumeration
    # ------------------------------------------------------------------
    def partitions(
        self, subset: frozenset[str], allow_cross_products: bool
    ) -> list[tuple[frozenset[str], frozenset[str]]]:
        """All ordered two-way partitions (S1, S2) of ``subset`` that form a
        valid join under the cross-product policy.

        With cross products allowed every non-trivial partition is valid.
        Without, both sides must induce connected subgraphs *and* at least
        one conjunct must connect them (the join must not be a Cartesian
        product).  Ordered pairs are returned because join commutativity
        makes ``A ⋈ B`` and ``B ⋈ A`` distinct memo expressions (and
        distinct plans for asymmetric implementations like hash join).
        """
        members = sorted(subset)
        n = len(members)
        if n < 2:
            return []
        out: list[tuple[frozenset[str], frozenset[str]]] = []
        # Enumerate each unordered pair once: fix members[0] on the left and
        # range the mask over subsets of the remaining members (excluding
        # the full set, which would leave the right side empty).
        for mask in range(0, (1 << (n - 1)) - 1):
            left = frozenset(
                [members[0]]
                + [members[i + 1] for i in range(n - 1) if mask & (1 << i)]
            )
            right = subset - left
            if not allow_cross_products:
                if not self.applicable_conjuncts(left, right):
                    continue
                if not (self.is_connected(left) and self.is_connected(right)):
                    continue
            out.append((left, right))
            out.append((right, left))
        return out

    def connected_subsets(self) -> list[frozenset[str]]:
        """All connected alias subsets, smallest first (by size, then name).

        This is the group universe for the no-cross-products search space.
        """
        out = [s for s in self.all_subsets() if self.is_connected(s)]
        return out

    def all_subsets(self) -> list[frozenset[str]]:
        """All non-empty alias subsets, smallest first (by size, then name)."""
        members = sorted(self.aliases)
        subsets = []
        for mask in range(1, 1 << len(members)):
            subsets.append(
                frozenset(m for i, m in enumerate(members) if mask & (1 << i))
            )
        subsets.sort(key=lambda s: (len(s), tuple(sorted(s))))
        return subsets
