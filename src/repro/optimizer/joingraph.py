"""The join hypergraph: which predicates connect which range variables.

Join reordering — by transformation rules or bottom-up enumeration — needs
one canonical answer to "what is the predicate of a join between alias
sets S1 and S2?".  We derive it from the query's conjunct list: a conjunct
*applies* to the join (S1, S2) when its referenced aliases fall within
S1 ∪ S2 but not within either side alone.  Because the predicate is a
function of the two alias sets, every transformation path that produces a
join of the same sides produces an *identical* operator, which is what
makes memo duplicate detection exact.

The same structure answers connectivity questions: the subgraph induced by
an alias set S (using only conjuncts fully inside S) must be connected for
S to be a valid sub-goal when Cartesian products are disallowed — the
distinction behind the two halves of the paper's Table 1.

Mask encoding
-------------
Internally every alias set is an integer bitmask interned through
:class:`repro.optimizer.bitset.AliasUniverse`: bit ``i`` is the ``i``-th
alias in sorted name order, so the numerically lowest bit of any mask is
its lexicographically smallest alias.  Each conjunct carries its
referenced-alias mask; per-alias *adjacency masks* (``adj[i]`` = union of
the masks of all conjuncts touching alias ``i``) make ``neighbors`` a few
OR instructions, and connectivity a word-parallel BFS whose results are
memoized per mask.  Join predicates are interned in a
``(left_mask, right_mask) -> predicate`` table, so the same predicate
*object* (with its cached fingerprint) is reused by every caller.

csg–cmp partition enumeration
-----------------------------
``partitions`` no longer generates all ``2^(n-1)`` candidate splits and
tests each from scratch.  Following the connected-subgraph/complement
style of DPccp (Moerkotte & Neumann 2006), it grows connected left sides
breadth-first from the subset's lowest alias via neighbor masks
(``EnumerateCsgRec``), then keeps exactly the splits whose complement is
connected and linked by at least one conjunct — checks that are O(1)
against the memoized connectivity table and adjacency masks.  When every
conjunct is binary (the overwhelmingly common case) no invalid left side
is ever materialized; hypergraph conjuncts (3+ referenced aliases) fall
back to the same enumeration plus an exact connectivity filter.  Valid
splits are emitted in the historical generate-and-test order (ascending
subset index over the name-sorted members), keeping memo layouts
byte-identical to the pre-bitset implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import Scalar, make_conjunction
from repro.algebra.logical import LogicalJoin
from repro.errors import OptimizerError
from repro.optimizer.bitset import AliasUniverse, iter_bits

__all__ = ["Conjunct", "JoinGraph"]


@dataclass(frozen=True)
class Conjunct:
    """One WHERE conjunct with its referenced alias set (and mask).

    ``mask`` is deliberately required: a defaulted 0 mask would classify
    the conjunct as internal to *every* subset and silently skew
    cardinality annotation."""

    expr: Scalar
    aliases: frozenset[str]
    mask: int


class JoinGraph:
    """Aliases plus multi-table conjuncts, with connectivity helpers."""

    def __init__(self, aliases: frozenset[str], conjuncts: list[Scalar]):
        if not aliases:
            raise OptimizerError("join graph requires at least one alias")
        self.aliases = frozenset(aliases)
        self.universe = AliasUniverse(self.aliases)
        self.conjuncts: list[Conjunct] = []
        self.constant_conjuncts: list[Scalar] = []
        mask_of = self.universe.mask_of
        for expr in conjuncts:
            referenced = frozenset(c.alias for c in expr.references())
            unknown = referenced - self.aliases
            if unknown:
                raise OptimizerError(
                    f"conjunct {expr.render()} references unknown aliases {sorted(unknown)}"
                )
            if not referenced:
                self.constant_conjuncts.append(expr)
            else:
                self.conjuncts.append(
                    Conjunct(expr, referenced, mask_of(referenced))
                )

        self._conjunct_masks: list[int] = [c.mask for c in self.conjuncts]
        #: all conjuncts reference at most two aliases (a plain graph, no
        #: hyperedges) — enables the pure csg–cmp fast paths
        self._only_binary = all(m.bit_count() <= 2 for m in self._conjunct_masks)
        # adjacency[i]: union of the masks of every conjunct touching bit i
        adjacency = [0] * self.universe.size
        for cm in self._conjunct_masks:
            for bit in iter_bits(cm):
                adjacency[bit.bit_length() - 1] |= cm
        self._adjacency = adjacency
        # memo tables (masks are cheap, stable dict keys)
        self._conn_cache: dict[int, bool] = {}
        self._pred_cache: dict[tuple[int, int], Scalar | None] = {}
        self._op_cache: dict[tuple[int, int], LogicalJoin] = {}
        self._csg_cache: list[int] | None = None
        self._all_subsets_cache: list[int] | None = None

    # ------------------------------------------------------------------
    # mask boundary conversion
    # ------------------------------------------------------------------
    def mask_of(self, aliases) -> int:
        """Intern an alias collection to its bitmask."""
        return self.universe.mask_of(aliases)

    def names(self, mask: int) -> frozenset[str]:
        """The alias set covered by ``mask``."""
        return self.universe.names(mask)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def applicable_conjuncts_m(self, left: int, right: int) -> list[Scalar]:
        """Conjuncts that become evaluable at the join of the two masks
        (and were not evaluable below it)."""
        combined = left | right
        out = []
        for conjunct in self.conjuncts:
            cm = conjunct.mask
            if not cm & ~combined and cm & ~left and cm & ~right:
                out.append(conjunct.expr)
        return out

    def applicable_conjuncts(
        self, left: frozenset[str], right: frozenset[str]
    ) -> list[Scalar]:
        """Conjuncts that become evaluable at the join of ``left`` and
        ``right`` (and were not evaluable below it)."""
        mask_of = self.universe.mask_of
        return self.applicable_conjuncts_m(mask_of(left), mask_of(right))

    def join_predicate_m(self, left: int, right: int) -> Scalar | None:
        """The canonical join predicate for the mask partition, interned:
        both orientations share one predicate object."""
        key = (left, right)
        cache = self._pred_cache
        if key in cache:
            return cache[key]
        predicate = make_conjunction(self.applicable_conjuncts_m(left, right))
        cache[key] = predicate
        cache[(right, left)] = predicate
        return predicate

    def join_predicate(
        self, left: frozenset[str], right: frozenset[str]
    ) -> Scalar | None:
        """The canonical join predicate for the partition (left, right)."""
        mask_of = self.universe.mask_of
        return self.join_predicate_m(mask_of(left), mask_of(right))

    def join_operator_m(self, left: int, right: int) -> LogicalJoin:
        """The interned logical join operator for the mask partition.

        The operator's identity is its predicate, which both orientations
        share — interning lets every insertion of the same logical join
        reuse one operator object (and its cached memo key).
        """
        key = (left, right)
        cache = self._op_cache
        op = cache.get(key)
        if op is None:
            op = LogicalJoin(self.join_predicate_m(left, right))
            cache[key] = op
            cache[(right, left)] = op
        return op

    def internal_conjuncts_m(self, mask: int) -> list[Conjunct]:
        """Conjuncts whose references fall entirely inside ``mask``."""
        return [c for c in self.conjuncts if not c.mask & ~mask]

    def internal_conjuncts(self, subset: frozenset[str]) -> list[Conjunct]:
        """Conjuncts whose references fall entirely inside ``subset``."""
        return self.internal_conjuncts_m(self.universe.mask_of(subset))

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def _neighbor_mask(self, mask: int) -> int:
        """Union of adjacency masks over the bits of ``mask`` (unrestricted:
        includes ``mask`` itself; callers strip as needed)."""
        out = 0
        adjacency = self._adjacency
        m = mask
        while m:
            bit = m & -m
            out |= adjacency[bit.bit_length() - 1]
            m ^= bit
        return out

    def components_m(self, mask: int) -> list[int]:
        """Connected components of the hypergraph induced by ``mask``.

        A conjunct counts only when *all* its aliases lie inside ``mask``
        (hyperedges connect nothing until complete)."""
        out: list[int] = []
        masks = self._conjunct_masks
        remaining = mask
        while remaining:
            component = remaining & -remaining
            changed = True
            while changed:
                changed = False
                for cm in masks:
                    if cm & component and not cm & ~mask and cm & ~component:
                        component |= cm
                        changed = True
            out.append(component)
            remaining &= ~component
        return out

    def components(self, subset: frozenset[str]) -> list[frozenset[str]]:
        """Connected components of the hypergraph induced by ``subset``."""
        names = self.universe.names
        return [names(m) for m in self.components_m(self.universe.mask_of(subset))]

    def _bfs_connected(self, mask: int) -> bool:
        """Word-parallel BFS connectivity (binary-conjunct graphs only)."""
        adjacency = self._adjacency
        component = frontier = mask & -mask
        while frontier:
            grown = 0
            m = frontier
            while m:
                bit = m & -m
                grown |= adjacency[bit.bit_length() - 1]
                m ^= bit
            frontier = grown & mask & ~component
            component |= frontier
        return component == mask

    def is_connected_m(self, mask: int) -> bool:
        """Memoized connectivity of the induced sub-hypergraph."""
        if not mask:
            return False
        if not mask & (mask - 1):  # single alias
            return True
        cache = self._conn_cache
        value = cache.get(mask)
        if value is None:
            if self._only_binary:
                value = self._bfs_connected(mask)
            else:
                first = self.components_m(mask)[0]
                value = first == mask
            cache[mask] = value
        return value

    def is_connected(self, subset: frozenset[str]) -> bool:
        if not subset:
            return False
        return self.is_connected_m(self.universe.mask_of(subset))

    def neighbors_m(self, mask: int) -> int:
        """Aliases outside ``mask`` reachable by one conjunct touching it."""
        return self._neighbor_mask(mask) & ~mask

    def neighbors(self, subset: frozenset[str]) -> frozenset[str]:
        """Aliases outside ``subset`` reachable by one conjunct that touches
        ``subset`` (used by connected-subgraph enumeration)."""
        return self.universe.names(self.neighbors_m(self.universe.mask_of(subset)))

    # ------------------------------------------------------------------
    # csg–cmp partition enumeration
    # ------------------------------------------------------------------
    def _grow_connected(
        self, start: int, start_nbr: int, prohibited: int, restrict: int, emit
    ) -> None:
        """DPccp's EnumerateCsgRec, iteratively: breadth-first growth of
        the connected set ``start`` through its neighbor mask, restricted
        to ``restrict`` (pass -1 for the whole universe) and never into
        ``prohibited``.  ``emit(mask, neighbor_mask)`` is called once per
        grown candidate — the seed itself is *not* emitted.

        The neighbor mask is maintained incrementally as bits are added,
        so neither the expansion nor the caller's linking checks ever
        recompute it from scratch.  Each candidate is produced exactly
        once (the per-level frontier is added to the prohibited set of
        the recursive expansions, the standard DPccp dedup argument).
        """
        adjacency = self._adjacency
        stack = [(start, start_nbr, prohibited)]
        while stack:
            grown, grown_nbr, blocked_below = stack.pop()
            frontier = grown_nbr & restrict & ~blocked_below & ~grown
            if not frontier:
                continue
            blocked = blocked_below | frontier
            sub = frontier
            while sub:
                candidate = grown | sub
                candidate_nbr = grown_nbr
                m = sub
                while m:
                    bit = m & -m
                    candidate_nbr |= adjacency[bit.bit_length() - 1]
                    m ^= bit
                emit(candidate, candidate_nbr)
                stack.append((candidate, candidate_nbr, blocked))
                sub = (sub - 1) & frontier

    def _connected_within(self, subset: int, start: int) -> list[tuple[int, int]]:
        """All adjacency-connected subsets of ``subset`` containing the
        one-bit mask ``start``, as ``(mask, neighbor_mask)`` pairs.

        With binary conjuncts every emitted mask is truly connected; with
        hyperedges the caller filters through :meth:`is_connected_m`.
        """
        start_nbr = self._adjacency[start.bit_length() - 1]
        out = [(start, start_nbr)]
        append = out.append
        self._grow_connected(
            start, start_nbr, start, subset,
            lambda mask, nbr: append((mask, nbr)),
        )
        return out

    # NOTE on split ordering: the historical generate-and-test loop
    # emitted a subset's splits in ascending *split index* — the value of
    # the left side's bits compressed over the subset's name-sorted
    # members.  Bit compression over a fixed subset is order-preserving
    # (it maps bit positions monotonically), so for splits of the same
    # subset ``index(a) < index(b)  <=>  a < b`` as plain integers:
    # sorting by the left mask reproduces the historical order without
    # computing an index per split.

    def partitions_m(
        self, subset: int, allow_cross_products: bool
    ) -> list[tuple[int, int]]:
        """All ordered two-way partitions of ``subset`` that form a valid
        join under the cross-product policy, as mask pairs.

        Emission order matches the historical generate-and-test loop:
        unordered splits ascend by split index (equivalently, by left
        mask — see the ordering note above), each immediately followed by
        its mirror.
        """
        if allow_cross_products:
            out: list[tuple[int, int]] = []
            for left, right in self.cross_splits_m(subset):
                out.append((left, right))
                out.append((right, left))
            return out
        if not subset & (subset - 1):  # fewer than two aliases
            return []
        lowest = subset & -subset
        rest = subset ^ lowest
        out = []

        only_binary = self._only_binary
        is_connected = self.is_connected_m
        masks = self._conjunct_masks
        valid: list[tuple[int, int]] = []
        for left, left_nbr in self._connected_within(subset, lowest):
            right = subset ^ left
            if not right:
                continue
            if not only_binary and not is_connected(left):
                continue
            if not is_connected(right):
                continue
            if only_binary:
                if not left_nbr & right:
                    continue
            else:
                # A linking conjunct must lie inside the subset and touch
                # both sides (hyperedges link only once complete).
                for cm in masks:
                    if not cm & ~subset and cm & left and cm & right:
                        break
                else:
                    continue
            valid.append((left, right))
        valid.sort()
        for left, right in valid:
            out.append((left, right))
            out.append((right, left))
        return out

    def cross_splits_m(self, subset: int) -> list[tuple[int, int]]:
        """Every unordered split of ``subset`` (the cross-products space:
        all are valid), left side containing the subset's lowest alias,
        in historical index order.  Callers that want ordered pairs emit
        the mirror themselves — half the tuples of the ordered form."""
        if not subset & (subset - 1):  # fewer than two aliases
            return []
        lowest = subset & -subset
        bits = list(iter_bits(subset ^ lowest))
        out: list[tuple[int, int]] = []
        for index in range((1 << len(bits)) - 1):
            left = lowest
            m = index
            while m:
                bit = m & -m
                left |= bits[bit.bit_length() - 1]
                m ^= bit
            out.append((left, subset ^ left))
        return out

    def csg_cmp_buckets(self) -> dict[int, list[tuple[int, int]]]:
        """Every valid no-cross-products split, grouped by subset mask.

        ``buckets[S]`` lists the unordered splits ``(left, right)`` of the
        connected subset ``S`` — left side containing ``S``'s smallest
        alias — in historical split-index order.  Binary-conjunct graphs
        run the full DPccp pairing (EnumerateCsg × EnumerateCmp): each
        valid csg–cmp pair is produced exactly once, globally, and nothing
        invalid is ever materialized.  Hypergraph queries fall back to the
        per-subset filtered enumeration.
        """
        if not self._only_binary:
            return {
                subset: [
                    pair
                    for pair in self.partitions_m(subset, False)[::2]
                ]
                for subset in self.connected_subset_masks()
                if subset & (subset - 1)
            }

        adjacency = self._adjacency
        grow = self._grow_connected
        buckets: dict[int, list[tuple[int, int]]] = {}

        def record(s1: int, s2: int) -> None:
            union = s1 | s2
            entry = (s1, s2)
            bucket = buckets.get(union)
            if bucket is None:
                buckets[union] = [entry]
            else:
                bucket.append(entry)

        def enumerate_cmp(s1: int, s1_nbr: int, prohibited0: int) -> None:
            # EnumerateCmp(S1): complements live outside S1 and outside the
            # prohibited prefix; each starts at one neighbor and grows.
            base_x = prohibited0 | s1
            candidates = s1_nbr & ~base_x
            if not candidates:
                return
            starts = list(iter_bits(candidates))
            for start in reversed(starts):  # descending index, as in DPccp
                record(s1, start)
                below = (start << 1) - 1  # start and all lower bits
                grow(
                    start,
                    adjacency[start.bit_length() - 1],
                    base_x | (below & candidates),
                    -1,
                    lambda s2, _nbr, s1=s1: record(s1, s2),
                )

        # EnumerateCsg with neighbor masks threaded through, running
        # EnumerateCmp on every emitted connected subset.
        for position in range(self.universe.size - 1, -1, -1):
            start = 1 << position
            prohibited0 = (1 << position) - 1  # strictly lower bits
            start_nbr = adjacency[position]
            enumerate_cmp(start, start_nbr, prohibited0)
            grow(
                start,
                start_nbr,
                prohibited0 | start,
                -1,
                lambda s1, s1_nbr, p0=prohibited0: enumerate_cmp(s1, s1_nbr, p0),
            )

        for entries in buckets.values():
            # left masks are unique per bucket (the right side is the
            # complement), so sorting pairs sorts by historical index
            entries.sort()
        return buckets

    def partitions(
        self, subset: frozenset[str], allow_cross_products: bool
    ) -> list[tuple[frozenset[str], frozenset[str]]]:
        """All ordered two-way partitions (S1, S2) of ``subset`` that form a
        valid join under the cross-product policy.

        With cross products allowed every non-trivial partition is valid.
        Without, both sides must induce connected subgraphs *and* at least
        one conjunct must connect them (the join must not be a Cartesian
        product).  Ordered pairs are returned because join commutativity
        makes ``A ⋈ B`` and ``B ⋈ A`` distinct memo expressions (and
        distinct plans for asymmetric implementations like hash join).
        """
        names = self.universe.names
        return [
            (names(left), names(right))
            for left, right in self.partitions_m(
                self.universe.mask_of(subset), allow_cross_products
            )
        ]

    # ------------------------------------------------------------------
    # subset universes
    # ------------------------------------------------------------------
    def _size_name_key(self, mask: int):
        return (mask.bit_count(), self.universe.sorted_names(mask))

    def connected_subset_masks(self) -> list[int]:
        """All connected alias subsets as masks, smallest first (by size,
        then name) — the group universe for the no-cross-products space.

        Binary-conjunct graphs use DPccp's EnumerateCsg (each connected
        subset emitted exactly once, nothing else materialized); hypergraph
        queries enumerate adjacency-connected candidates and filter through
        the exact connectivity test.
        """
        if self._csg_cache is not None:
            return self._csg_cache
        out: list[int] = []
        adjacency = self._adjacency
        only_binary = self._only_binary
        append = out.append
        for position in range(self.universe.size - 1, -1, -1):
            start = 1 << position
            prohibited0 = (1 << (position + 1)) - 1
            append(start)
            self._grow_connected(
                start,
                adjacency[position],
                prohibited0,
                -1,
                lambda mask, _nbr: append(mask),
            )
        if only_binary:
            for mask in out:
                self._conn_cache[mask] = True
        else:
            out = [m for m in out if self.is_connected_m(m)]
        out.sort(key=self._size_name_key)
        self._csg_cache = out
        return out

    def all_subset_masks(self) -> list[int]:
        """All non-empty alias subsets as masks, smallest first (by size,
        then name)."""
        if self._all_subsets_cache is None:
            subsets = list(range(1, self.universe.full_mask + 1))
            subsets.sort(key=self._size_name_key)
            self._all_subsets_cache = subsets
        return self._all_subsets_cache

    def enumeration_universe(
        self, allow_cross_products: bool
    ) -> tuple[list[int], dict[int, list[tuple[int, int]]] | None]:
        """The explorer's subset universe plus per-subset split buckets.

        One definition for every consumer that must walk the search space
        in the canonical order — the object explorer, the batched
        columnar builder, and (through it) the implicit engine — so the
        byte-identical-memo guarantee cannot drift between them.  In the
        cross-products space ``buckets`` is ``None``: every split is
        valid, and callers take :meth:`cross_splits_m` per subset.
        """
        if allow_cross_products:
            return self.all_subset_masks(), None
        return self.connected_subset_masks(), self.csg_cmp_buckets()

    def connected_subsets(self) -> list[frozenset[str]]:
        """All connected alias subsets, smallest first (by size, then name).

        This is the group universe for the no-cross-products search space.
        """
        names = self.universe.names
        return [names(m) for m in self.connected_subset_masks()]

    def all_subsets(self) -> list[frozenset[str]]:
        """All non-empty alias subsets, smallest first (by size, then name)."""
        names = self.universe.names
        return [names(m) for m in self.all_subset_masks()]
