"""The TPC-H queries of the paper's evaluation.

The paper's Section 5 experiments use "TPC-H queries 5, 7, 8, 9, which are
the join-intensive queries of the benchmark"; Q6 appears as the example of
a small query whose cost distribution degenerates to noise.  The texts
below are lightly simplified to the reproduction's SQL dialect (no
nested subqueries, no EXTRACT/CASE; aggregates are plain SUMs), keeping
every join edge and every filter that shapes the search space:

* Q5 — 6 relations in a cycle (customer/supplier nation equality closes it);
* Q7 — 6 relations including two instances of ``nation`` and a
  disjunctive cross-table predicate;
* Q8 — 8 relations, the largest space in Table 1;
* Q9 — 6 relations with a two-column composite edge to ``partsupp`` and a
  LIKE filter;
* Q6 — single relation (degenerate space);
* Q3 and Q10 — smaller join queries used by examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["TpchQuery", "TPCH_QUERIES", "tpch_query"]


@dataclass(frozen=True)
class TpchQuery:
    """One benchmark query: its SQL plus search-space metadata."""

    name: str
    sql: str
    relations: int
    description: str
    in_paper_table1: bool = False


_Q5 = TpchQuery(
    name="Q5",
    relations=6,
    in_paper_table1=True,
    description="local supplier volume: 6-way join, cycle through "
    "customer/supplier nation equality",
    sql="""
SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c, orders o, lineitem l, supplier s, nation n, region r
WHERE c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND l.l_suppkey = s.s_suppkey
  AND c.c_nationkey = s.s_nationkey
  AND s.s_nationkey = n.n_nationkey
  AND n.n_regionkey = r.r_regionkey
  AND r.r_name = 'ASIA'
  AND o.o_orderdate >= '1994-01-01'
  AND o.o_orderdate < '1995-01-01'
GROUP BY n.n_name
""",
)

_Q7 = TpchQuery(
    name="Q7",
    relations=6,
    in_paper_table1=True,
    description="volume shipping: 6-way join with two nation instances and "
    "a disjunctive nation-pair predicate",
    sql="""
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2
WHERE s.s_suppkey = l.l_suppkey
  AND o.o_orderkey = l.l_orderkey
  AND c.c_custkey = o.o_custkey
  AND s.s_nationkey = n1.n_nationkey
  AND c.c_nationkey = n2.n_nationkey
  AND (n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY'
       OR n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')
  AND l.l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
GROUP BY n1.n_name, n2.n_name
""",
)

_Q8 = TpchQuery(
    name="Q8",
    relations=8,
    in_paper_table1=True,
    description="national market share: 8-way join, the paper's largest "
    "search space",
    sql="""
SELECT n2.n_name AS nation, SUM(l.l_extendedprice * (1 - l.l_discount)) AS volume
FROM part p, supplier s, lineitem l, orders o, customer c,
     nation n1, nation n2, region r
WHERE p.p_partkey = l.l_partkey
  AND s.s_suppkey = l.l_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND c.c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = r.r_regionkey
  AND s.s_nationkey = n2.n_nationkey
  AND r.r_name = 'AMERICA'
  AND o.o_orderdate BETWEEN '1995-01-01' AND '1996-12-31'
  AND p.p_type = 'ECONOMY ANODIZED STEEL'
GROUP BY n2.n_name
""",
)

_Q9 = TpchQuery(
    name="Q9",
    relations=6,
    in_paper_table1=True,
    description="product type profit: 6-way join with composite "
    "lineitem-partsupp edge and a LIKE filter",
    sql="""
SELECT n.n_name AS nation,
       SUM(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity)
           AS profit
FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
WHERE s.s_suppkey = l.l_suppkey
  AND ps.ps_suppkey = l.l_suppkey
  AND ps.ps_partkey = l.l_partkey
  AND p.p_partkey = l.l_partkey
  AND o.o_orderkey = l.l_orderkey
  AND s.s_nationkey = n.n_nationkey
  AND p.p_name LIKE '%green%'
GROUP BY n.n_name
""",
)

_Q6 = TpchQuery(
    name="Q6",
    relations=1,
    description="forecasting revenue change: single-table aggregate; the "
    "paper's example of a degenerate cost distribution",
    sql="""
SELECT SUM(l.l_extendedprice * l.l_discount) AS revenue
FROM lineitem l
WHERE l.l_shipdate >= '1994-01-01'
  AND l.l_shipdate < '1995-01-01'
  AND l.l_discount BETWEEN 0.05 AND 0.07
  AND l.l_quantity < 24
""",
)

_Q3 = TpchQuery(
    name="Q3",
    relations=3,
    description="shipping priority: 3-way join, small enough for "
    "exhaustive enumeration in tests",
    sql="""
SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c, orders o, lineitem l
WHERE c.c_mktsegment = 'BUILDING'
  AND c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_orderdate < '1995-03-15'
  AND l.l_shipdate > '1995-03-15'
GROUP BY l.l_orderkey
""",
)

_Q10 = TpchQuery(
    name="Q10",
    relations=4,
    description="returned item reporting: 4-way join",
    sql="""
SELECT c.c_custkey, n.n_name,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c, orders o, lineitem l, nation n
WHERE c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_orderdate >= '1993-10-01'
  AND o.o_orderdate < '1994-01-01'
  AND l.l_returnflag = 'R'
  AND c.c_nationkey = n.n_nationkey
GROUP BY c.c_custkey, n.n_name
""",
)

TPCH_QUERIES: dict[str, TpchQuery] = {
    q.name: q for q in (_Q3, _Q5, _Q6, _Q7, _Q8, _Q9, _Q10)
}


def tpch_query(name: str) -> TpchQuery:
    """Look up a query by name (``"Q5"``, ``"Q7"``, ...)."""
    try:
        return TPCH_QUERIES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(TPCH_QUERIES))
        raise ReproError(f"unknown TPC-H query {name!r} (known: {known})") from None
