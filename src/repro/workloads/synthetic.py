"""Synthetic workloads: parameterized chain/star/clique join queries.

Used for scaling benchmarks (counting time vs. query size, experiment E5)
and property-based tests that need many structurally different queries
with known join graphs.  Each generator builds its own catalog (tables
``t0 .. t{n-1}``), a matching micro database, and the query SQL, so the
whole pipeline — parse, bind, optimize, count, sample, execute — runs on
them exactly as on TPC-H.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Index, TableSchema
from repro.catalog.statistics import ColumnStats, TableStats
from repro.errors import ReproError
from repro.storage.database import Database
from repro.storage.table import DataTable
from repro.util.rng import make_rng, spawn_rng

__all__ = [
    "SyntheticWorkload",
    "chain_query",
    "star_query",
    "clique_query",
    "cycle_query",
    "random_query",
]

_INT = ColumnType.INTEGER


@dataclass
class SyntheticWorkload:
    """A self-contained synthetic scenario.

    ``edges`` is the join graph as ``(a, b)`` table-index pairs — the
    ground truth topology, so tests sweeping random graphs can assert
    against the known edge list.
    """

    name: str
    catalog: Catalog
    database: Database
    sql: str
    relations: int
    edges: tuple[tuple[int, int], ...] = ()


def _make_table(
    name: str, rows: int, fk_targets: list[str], with_index: bool, seed: int
) -> tuple[TableSchema, TableStats, list[tuple]]:
    """A table ``name(id, val, fk_<t> per target)`` with ``rows`` rows."""
    columns = [Column("id", _INT), Column("val", _INT)]
    for target in fk_targets:
        columns.append(Column(f"fk_{target}", _INT))
    indexes = []
    if with_index:
        indexes.append(
            Index(f"{name}_pk", name, ("id",), unique=True, clustered=True)
        )
        for target in fk_targets:
            indexes.append(Index(f"{name}_{target}", name, (f"fk_{target}",)))
    schema = TableSchema(
        name=name,
        columns=tuple(columns),
        primary_key=("id",),
        indexes=tuple(indexes),
    )
    rng = make_rng((seed, name))
    data = []
    for key in range(1, rows + 1):
        row = [key, rng.randint(0, 99)]
        for _ in fk_targets:
            row.append(rng.randint(1, max(1, rows // 2)))
        data.append(tuple(row))
    col_stats = {
        "id": ColumnStats(distinct=rows, lo=1, hi=rows),
        "val": ColumnStats(distinct=min(rows, 100), lo=0, hi=99),
    }
    for target in fk_targets:
        col_stats[f"fk_{target}"] = ColumnStats(
            distinct=max(1, rows // 2), lo=1, hi=max(1, rows // 2)
        )
    return schema, TableStats(row_count=rows, columns=col_stats), data


def _build(
    name: str,
    n_tables: int,
    edges: list[tuple[int, int]],
    rows: int,
    with_indexes: bool,
    seed: int,
    aggregate: bool,
) -> SyntheticWorkload:
    if n_tables < 1:
        raise ReproError("need at least one table")
    catalog = Catalog()
    # fk_targets per table: for edge (a, b) the referencing side is the
    # higher-numbered table (it stores fk_t<low>).
    fk_targets: dict[int, list[str]] = {i: [] for i in range(n_tables)}
    for a, b in edges:
        low, high = min(a, b), max(a, b)
        fk_targets[high].append(f"t{low}")

    database = Database(catalog=catalog)
    rng = make_rng(seed)
    for i in range(n_tables):
        table_rows = rows + spawn_rng(rng, f"rows{i}").randint(0, rows)
        schema, stats, data = _make_table(
            f"t{i}", table_rows, fk_targets[i], with_indexes, seed
        )
        catalog.add_table(schema, stats)
        database.add_table(DataTable(schema, data))

    predicates = [
        f"t{max(a, b)}.fk_t{min(a, b)} = t{min(a, b)}.id" for a, b in edges
    ]
    from_list = ", ".join(f"t{i}" for i in range(n_tables))
    where = " AND ".join(predicates) if predicates else ""
    if aggregate:
        select = "SELECT COUNT(*) AS n, SUM(t0.val) AS total"
    else:
        select = "SELECT t0.id, t0.val"
    sql = f"{select} FROM {from_list}"
    if where:
        sql += f" WHERE {where}"
    return SyntheticWorkload(
        name=name,
        catalog=catalog,
        database=database,
        sql=sql,
        relations=n_tables,
        edges=tuple((min(a, b), max(a, b)) for a, b in edges),
    )


def chain_query(
    n_tables: int,
    rows: int = 20,
    with_indexes: bool = True,
    seed: int = 0,
    aggregate: bool = True,
) -> SyntheticWorkload:
    """``t0 - t1 - t2 - ... - t{n-1}`` (linear join graph)."""
    edges = [(i, i + 1) for i in range(n_tables - 1)]
    return _build(
        f"chain{n_tables}", n_tables, edges, rows, with_indexes, seed, aggregate
    )


def star_query(
    n_tables: int,
    rows: int = 20,
    with_indexes: bool = True,
    seed: int = 0,
    aggregate: bool = True,
) -> SyntheticWorkload:
    """``t0`` in the centre, ``t1..t{n-1}`` as satellites."""
    edges = [(0, i) for i in range(1, n_tables)]
    return _build(
        f"star{n_tables}", n_tables, edges, rows, with_indexes, seed, aggregate
    )


def clique_query(
    n_tables: int,
    rows: int = 20,
    with_indexes: bool = True,
    seed: int = 0,
    aggregate: bool = True,
) -> SyntheticWorkload:
    """Every pair of tables connected (maximally cyclic join graph)."""
    edges = [
        (a, b) for a in range(n_tables) for b in range(a + 1, n_tables)
    ]
    return _build(
        f"clique{n_tables}", n_tables, edges, rows, with_indexes, seed, aggregate
    )


def random_query(
    n_tables: int,
    edge_density: float = 0.3,
    seed: int = 0,
    rows: int = 20,
    with_indexes: bool = True,
    aggregate: bool = True,
) -> SyntheticWorkload:
    """A seeded random *connected* join graph over ``n_tables`` tables.

    The graph is a uniform random spanning tree (each table ``i`` attaches
    to a random earlier table under a seeded permutation — always
    connected, so the no-cross-products space is never empty) plus extra
    non-tree edges: ``edge_density`` interpolates between a tree (0.0) and
    the clique (1.0).  Identical ``(n_tables, edge_density, seed)``
    arguments produce the identical edge list — recorded on the returned
    workload's ``edges`` — so property tests can sweep arbitrary
    topologies beyond chain/star/clique/cycle reproducibly.
    """
    if n_tables < 1:
        raise ReproError("need at least one table")
    if not 0.0 <= edge_density <= 1.0:
        raise ReproError("edge_density must be within [0, 1]")
    rng = make_rng(("random_query", n_tables, edge_density, seed))
    order = list(range(n_tables))
    rng.shuffle(order)
    edges: list[tuple[int, int]] = []
    for position in range(1, n_tables):
        anchor = order[rng.randrange(position)]
        table = order[position]
        edges.append((min(anchor, table), max(anchor, table)))
    tree = set(edges)
    candidates = [
        (a, b)
        for a in range(n_tables)
        for b in range(a + 1, n_tables)
        if (a, b) not in tree
    ]
    extra = round(edge_density * len(candidates))
    if extra:
        rng.shuffle(candidates)
        edges.extend(sorted(candidates[:extra]))
    return _build(
        f"random{n_tables}d{edge_density:g}s{seed}",
        n_tables,
        edges,
        rows,
        with_indexes,
        seed,
        aggregate,
    )


def cycle_query(
    n_tables: int,
    rows: int = 20,
    with_indexes: bool = True,
    seed: int = 0,
    aggregate: bool = True,
) -> SyntheticWorkload:
    """``t0 - t1 - ... - t{n-1} - t0`` (a single cycle): the minimal
    cyclic join graph, and the classic hard case for transformation-rule
    completeness and for partition enumeration."""
    if n_tables < 3:
        raise ReproError("a cycle needs at least three tables")
    edges = [(i, i + 1) for i in range(n_tables - 1)] + [(0, n_tables - 1)]
    return _build(
        f"cycle{n_tables}", n_tables, edges, rows, with_indexes, seed, aggregate
    )
