"""Misestimation workloads: queries whose first plan pick is wrong.

The execution-feedback loop (:mod:`repro.obs.feedback`) only matters
when static statistics mislead the optimizer, so the feedback benchmark
(``benchmarks/bench_feedback.py``) and the CI feedback smoke run on
workloads where they deliberately do: a synthetic chain/star query (or
the TPC-H micro database) whose catalog statistics are skewed by
:func:`corrupt_statistics` *after* data generation.  The data itself is
untouched — execution still returns the true rows — so every
instrumented run feeds the ledger actuals that contradict the catalog,
and feedback-driven re-costing has something real to correct.

The skew is multiplicative and per-table (row counts and distinct
counts scaled together, keeping per-row selectivities consistent),
drawn deterministically from a seed: the same ``(workload, seed,
factor)`` triple always produces the same wrong statistics, the same
wrong first plan, and the same recovery trajectory.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import ColumnStats, TableStats
from repro.storage.database import Database
from repro.storage.datagen import generate_tpch
from repro.util.rng import make_rng
from repro.workloads.synthetic import (
    SyntheticWorkload,
    chain_query,
    star_query,
)

__all__ = [
    "corrupt_statistics",
    "misestimated_chain",
    "misestimated_star",
    "misestimated_tpch",
]


def corrupt_statistics(
    catalog: Catalog,
    tables: list[str] | None = None,
    seed: int = 0,
    factor: float = 64.0,
) -> dict[str, float]:
    """Skew ``catalog``'s statistics so join ordering goes wrong.

    Every table's row count and per-column distinct counts are scaled
    by a seeded per-table factor in ``[1, factor]`` (inflation only:
    deflated statistics make *unobserved* subplans look falsely cheap,
    which turns the feedback loop into a worst-case exploration problem
    rather than a convergence demo).  Because the factors differ per
    table, the *relative* sizes — what join ordering actually ranks on
    — are shuffled, not just the absolute scale.  Returns the applied
    ``{table: factor}`` map for reporting.
    """
    names = sorted(tables if tables is not None else catalog.table_names())
    rng = make_rng(("misestimate", seed, factor))
    applied: dict[str, float] = {}
    for name in names:
        stats = catalog.table_stats(name)
        scale = factor ** rng.random()
        applied[name] = scale
        new_rows = max(1, int(stats.row_count * scale))
        columns = {
            cname: ColumnStats(
                distinct=max(1, min(new_rows, int(col.distinct * scale))),
                lo=col.lo,
                hi=col.hi,
                null_fraction=col.null_fraction,
            )
            for cname, col in stats.columns.items()
        }
        catalog.set_stats(name, TableStats(row_count=new_rows, columns=columns))
    return applied


def misestimated_chain(
    n_tables: int = 5,
    rows: int = 24,
    seed: int = 0,
    factor: float = 64.0,
) -> SyntheticWorkload:
    """A chain join whose catalog statistics are seeded lies."""
    workload = chain_query(n_tables, rows=rows, seed=seed, aggregate=False)
    corrupt_statistics(workload.catalog, seed=seed, factor=factor)
    return workload


def misestimated_star(
    n_tables: int = 5,
    rows: int = 24,
    seed: int = 0,
    factor: float = 64.0,
) -> SyntheticWorkload:
    """A star join whose catalog statistics are seeded lies."""
    workload = star_query(n_tables, rows=rows, seed=seed, aggregate=False)
    corrupt_statistics(workload.catalog, seed=seed, factor=factor)
    return workload


def misestimated_tpch(seed: int = 0, factor: float = 64.0) -> Database:
    """The micro TPC-H database with seeded-lie statistics.

    Data generation uses the *correct* statistics (the generator sizes
    tables off the catalog), and only then are the statistics skewed —
    so executions observe the honest micro-database cardinalities while
    the optimizer plans against the lies.
    """
    database = generate_tpch(seed=seed)
    corrupt_statistics(database.catalog, seed=seed, factor=factor)
    return database
