"""The paper's running example (Figures 1-3 and the appendix), rebuilt.

Figure 2 shows a partially expanded MEMO for ``(A ⋈ B) ⋈ C``; Figure 3
materializes the links for plans rooted in operator 7.7 and annotates the
per-operator plan counts.  Decoding the annotations fixes the exact link
semantics the paper uses:

* group 1 (Scan A) holds TableScan, SortedIdxScan and a Sort enforcer;
  ``N(Sort) = 2`` — the enforcer links to *both* non-enforcer scans, even
  the already-sorted index scan;
* group 3's hash join 3.3 takes any of group 1's 4 alternatives and any
  of group 2's 2, so ``N(3.3) = 2 x 4 = 8``;
* group 3's merge join 3.4 accepts only the sorted alternatives: one in
  group 2 and ``1 + 2`` in group 1, so ``N(3.4) = 1 x 3 = 3``;
* the root operator 7.7 therefore roots ``2 x 11 = 22`` plans.

:func:`build_paper_example` reconstructs exactly this memo (groups are
renumbered densely 0..5 but carry the paper's operator identities in
``PAPER_IDS``), and :data:`EXPECTED_COUNTS` records the published
``N(v)`` values, which the test-suite verifies against our counting
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import ColumnId, ColumnRef, Comparison, CompOp
from repro.algebra.logical import LogicalGet, LogicalJoin
from repro.algebra.physical import (
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    Sort,
    TableScan,
)
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Index, TableSchema
from repro.catalog.statistics import ColumnStats, TableStats
from repro.memo.memo import Memo
from repro.storage.database import Database
from repro.storage.table import DataTable
from repro.util.rng import make_rng

__all__ = [
    "PaperExample",
    "build_paper_example",
    "EXPECTED_COUNTS",
    "EXPECTED_TOTAL",
]

_INT = ColumnType.INTEGER


@dataclass
class PaperExample:
    """The reconstructed Figure 2/3 memo plus its catalog and data."""

    catalog: Catalog
    database: Database
    memo: Memo
    #: map from the paper's operator ids ("7.7") to ours ("<gid>.<local>")
    paper_ids: dict[str, str]


#: The per-operator plan counts annotated in the paper's Figure 3.
EXPECTED_COUNTS: dict[str, int] = {
    "1.2": 1,  # TableScan A
    "1.3": 1,  # SortedIdxScan A
    "1.4": 2,  # Sort A — links to both scans
    "2.2": 1,  # TableScan B
    "2.3": 1,  # SortedIdxScan B
    "3.3": 8,  # HashJoin(A, B): 4 x 2
    "3.4": 3,  # MergeJoin(B, A): 1 x 3
    "4.2": 1,  # TableScan C
    "4.3": 1,  # SortedIdxScan C
    "7.7": 22,  # HashJoin(C, AB): 2 x 11
    "7.8": 22,  # second root implementation
}

#: Total plans rooted in the root group (7.7 and 7.8 alike root 22).
EXPECTED_TOTAL = 44


def _tiny_table(name: str, rows: int, seed: int) -> tuple[TableSchema, TableStats, list[tuple]]:
    schema = TableSchema(
        name=name,
        columns=(Column("x", _INT), Column("y", _INT)),
        primary_key=("x",),
        indexes=(Index(f"{name}_x", name, ("x",), unique=True, clustered=True),),
    )
    rng = make_rng((seed, name))
    data = [(k, rng.randint(0, 9)) for k in range(1, rows + 1)]
    stats = TableStats(
        row_count=rows,
        columns={
            "x": ColumnStats(distinct=rows, lo=1, hi=rows),
            "y": ColumnStats(distinct=10, lo=0, hi=9),
        },
    )
    return schema, stats, data


def build_paper_example(rows: int = 8, seed: int = 0) -> PaperExample:
    """Reconstruct the Figure 2/3 memo for ``(A ⋈ B) ⋈ C``.

    The memo is built by hand — not through the optimizer — because the
    figure shows a *partially* expanded space (e.g. group 2 carries no
    Sort enforcer).  The paper's algorithms must work on any memo shape,
    which is exactly what this fixture exercises.
    """
    catalog = Catalog()
    database = Database(catalog=catalog)
    for name in ("a", "b", "c"):
        schema, stats, data = _tiny_table(name, rows, seed)
        catalog.add_table(schema, stats)
        database.add_table(DataTable(schema, data))

    ax = ColumnId("a", "x")
    bx = ColumnId("b", "x")
    cx = ColumnId("c", "x")
    pred_ab = Comparison(CompOp.EQ, ColumnRef(ax), ColumnRef(bx))
    pred_c_ab = Comparison(CompOp.EQ, ColumnRef(cx), ColumnRef(ax))

    memo = Memo()
    paper_ids: dict[str, str] = {}

    # Group "1": Scan A = {logical Get, TableScan, SortedIdxScan, Sort}.
    g1 = memo.get_or_create_group(("rels", frozenset(["a"])), frozenset(["a"]))
    memo.insert(LogicalGet("a", "a"), (), g1)
    paper_ids["1.2"] = memo.insert(TableScan("a", "a"), (), g1).id_str
    paper_ids["1.3"] = memo.insert(
        IndexScan("a", "a", "a_x", (ax,)), (), g1
    ).id_str
    paper_ids["1.4"] = memo.insert(Sort((ax,)), (g1.gid,), g1).id_str

    # Group "2": Scan B = {Get, TableScan, SortedIdxScan} — no enforcer.
    g2 = memo.get_or_create_group(("rels", frozenset(["b"])), frozenset(["b"]))
    memo.insert(LogicalGet("b", "b"), (), g2)
    paper_ids["2.2"] = memo.insert(TableScan("b", "b"), (), g2).id_str
    paper_ids["2.3"] = memo.insert(
        IndexScan("b", "b", "b_x", (bx,)), (), g2
    ).id_str

    # Group "3": A join B = {Join, HashJoin(A,B), MergeJoin(B,A)}.
    rels_ab = frozenset(["a", "b"])
    g3 = memo.get_or_create_group(("rels", rels_ab), rels_ab)
    memo.insert(LogicalJoin(pred_ab), (g1.gid, g2.gid), g3)
    paper_ids["3.3"] = memo.insert(
        HashJoin(left_keys=(ax,), right_keys=(bx,)), (g1.gid, g2.gid), g3
    ).id_str
    paper_ids["3.4"] = memo.insert(
        MergeJoin(left_keys=(bx,), right_keys=(ax,)), (g2.gid, g1.gid), g3
    ).id_str

    # Group "4": Scan C.
    g4 = memo.get_or_create_group(("rels", frozenset(["c"])), frozenset(["c"]))
    memo.insert(LogicalGet("c", "c"), (), g4)
    paper_ids["4.2"] = memo.insert(TableScan("c", "c"), (), g4).id_str
    paper_ids["4.3"] = memo.insert(
        IndexScan("c", "c", "c_x", (cx,)), (), g4
    ).id_str

    # Group "7": (A join B) join C, rooted in C-first operators as in the
    # figure: 7.7 = HashJoin(C, AB), 7.8 = NestedLoopJoin(C, AB).
    rels_abc = frozenset(["a", "b", "c"])
    g7 = memo.get_or_create_group(("rels", rels_abc), rels_abc)
    memo.insert(LogicalJoin(pred_c_ab), (g4.gid, g3.gid), g7)
    paper_ids["7.7"] = memo.insert(
        HashJoin(left_keys=(cx,), right_keys=(ax,)), (g4.gid, g3.gid), g7
    ).id_str
    paper_ids["7.8"] = memo.insert(
        NestedLoopJoin(pred_c_ab), (g4.gid, g3.gid), g7
    ).id_str

    memo.set_root(g7.gid)

    # Cardinalities: enough for plan extraction and costing in examples.
    for group in memo.groups:
        group.cardinality = float(rows) ** len(group.relations)

    return PaperExample(
        catalog=catalog, database=database, memo=memo, paper_ids=paper_ids
    )
