"""Workloads (system S12): the paper's TPC-H queries plus synthetic
chain/star/clique join queries for scaling and property-based tests."""

from repro.workloads.tpch_queries import (
    TPCH_QUERIES,
    TpchQuery,
    tpch_query,
)
from repro.workloads.misestimated import (
    corrupt_statistics,
    misestimated_chain,
    misestimated_star,
    misestimated_tpch,
)
from repro.workloads.synthetic import (
    SyntheticWorkload,
    chain_query,
    clique_query,
    star_query,
)

__all__ = [
    "TPCH_QUERIES",
    "TpchQuery",
    "tpch_query",
    "SyntheticWorkload",
    "chain_query",
    "clique_query",
    "star_query",
    "corrupt_statistics",
    "misestimated_chain",
    "misestimated_star",
    "misestimated_tpch",
]
