"""Logical operators: the relational algebra of a bound query.

Logical operators live in MEMO groups and are the input of both kinds of
optimizer rules: *exploration* rules derive more logical operators (join
reordering) and *implementation* rules derive physical operators from
logical ones.  Children are not stored here — inside the memo, a group
expression pairs an operator with child *group* references (Section 2 of
the paper, Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    AggregateCall,
    CachedKey,
    ColumnId,
    Scalar,
)
from repro.errors import AlgebraError

__all__ = [
    "LogicalOperator",
    "LogicalGet",
    "LogicalJoin",
    "LogicalSelect",
    "LogicalProject",
    "LogicalAggregate",
]


class LogicalOperator:
    """Base class for logical operators."""

    #: number of children the operator takes
    arity: int = 0

    @property
    def name(self) -> str:
        return type(self).__name__

    def key(self) -> CachedKey:
        """Canonical hashable identity used for MEMO duplicate detection.

        Memoized per operator object — operators are immutable and the
        memo recomputes the key on every insertion and lookup.  The result
        is a hash-caching wrapper, so dictionary operations never re-walk
        the nested predicate fingerprints inside.
        """
        key = self.__dict__.get("_key_cache")
        if key is None:
            key = CachedKey(self._key())
            object.__setattr__(self, "_key_cache", key)
        return key

    def _key(self) -> tuple:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _predicate_fp(predicate: Scalar | None) -> tuple | None:
    return None if predicate is None else predicate.fingerprint()


def _predicate_str(predicate: Scalar | None) -> str:
    return "" if predicate is None else f" [{predicate.render()}]"


@dataclass(frozen=True)
class LogicalGet(LogicalOperator):
    """Read one base table under a range-variable alias.

    Single-table filter conjuncts are pushed down into the Get during
    binding (standard predicate pushdown), so the join search operates on
    filtered relations, as real optimizers do.
    """

    table: str
    alias: str
    predicate: Scalar | None = None

    arity = 0

    def _key(self) -> tuple:
        return ("get", self.table, self.alias, _predicate_fp(self.predicate))

    def render(self) -> str:
        return f"Get({self.table} AS {self.alias}){_predicate_str(self.predicate)}"


@dataclass(frozen=True)
class LogicalJoin(LogicalOperator):
    """Inner join of two children on ``predicate``.

    ``predicate is None`` is a Cartesian product — only generated when the
    search space is configured to allow cross products (the distinction
    behind the two halves of the paper's Table 1).
    """

    predicate: Scalar | None = None

    arity = 2

    def _key(self) -> tuple:
        return ("join", _predicate_fp(self.predicate))

    def render(self) -> str:
        return f"Join{_predicate_str(self.predicate)}"

    def is_cross_product(self) -> bool:
        return self.predicate is None


@dataclass(frozen=True)
class LogicalSelect(LogicalOperator):
    """A residual filter over one child.

    Holds predicates that could not be pushed into a Get or attached to a
    join (e.g. a disjunction spanning three tables).
    """

    predicate: Scalar

    arity = 1

    def __post_init__(self) -> None:
        if self.predicate is None:
            raise AlgebraError("LogicalSelect requires a predicate")

    def _key(self) -> tuple:
        return ("select", _predicate_fp(self.predicate))

    def render(self) -> str:
        return f"Select{_predicate_str(self.predicate)}"


@dataclass(frozen=True)
class LogicalProject(LogicalOperator):
    """Compute named output expressions over one child."""

    outputs: tuple[tuple[str, Scalar], ...]

    arity = 1

    def __post_init__(self) -> None:
        if not self.outputs:
            raise AlgebraError("LogicalProject requires at least one output")
        names = [name for name, _ in self.outputs]
        if len(set(names)) != len(names):
            raise AlgebraError("duplicate output names in projection")

    def _key(self) -> tuple:
        return (
            "project",
            tuple((name, expr.fingerprint()) for name, expr in self.outputs),
        )

    def render(self) -> str:
        cols = ", ".join(f"{expr.render()} AS {name}" for name, expr in self.outputs)
        return f"Project({cols})"


@dataclass(frozen=True)
class LogicalAggregate(LogicalOperator):
    """Group by ``group_by`` columns and compute named aggregates.

    An empty ``group_by`` is a scalar aggregate producing exactly one row.
    """

    group_by: tuple[ColumnId, ...]
    aggregates: tuple[tuple[str, AggregateCall], ...]

    arity = 1

    def __post_init__(self) -> None:
        names = [name for name, _ in self.aggregates]
        if len(set(names)) != len(names):
            raise AlgebraError("duplicate aggregate output names")

    def _key(self) -> tuple:
        return (
            "aggregate",
            tuple((c.alias, c.column) for c in self.group_by),
            tuple((name, call.fingerprint()) for name, call in self.aggregates),
        )

    def render(self) -> str:
        keys = ", ".join(c.render() for c in self.group_by) or "()"
        aggs = ", ".join(
            f"{call.render()} AS {name}" for name, call in self.aggregates
        )
        return f"Aggregate(by {keys}; {aggs})"
