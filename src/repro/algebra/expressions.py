"""Scalar expressions: column references, literals, predicates, arithmetic.

Expressions are immutable, hashable trees.  Each node exposes

* ``references()`` — the set of :class:`ColumnId` it reads, which drives
  predicate placement (which join an equality belongs to) and
  connected-subgraph tests for the no-Cartesian-product mode;
* ``fingerprint()`` — a canonical, hashable encoding used for MEMO
  duplicate detection;
* ``render()`` — SQL-ish text for EXPLAIN output.

Evaluation is *not* implemented here: the execution engine compiles
expressions into Python closures (:mod:`repro.executor.scalar`), keeping
the algebra layer free of runtime concerns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AlgebraError

__all__ = [
    "CachedKey",
    "ColumnId",
    "Scalar",
    "ColumnRef",
    "Literal",
    "CompOp",
    "Comparison",
    "BoolOp",
    "BoolExpr",
    "Arithmetic",
    "UnaryMinus",
    "Like",
    "InList",
    "IsNull",
    "AggFunc",
    "AggregateCall",
    "split_conjuncts",
    "make_conjunction",
]


class CachedKey:
    """A canonical key tuple with its hash computed exactly once.

    Operator keys embed deep predicate fingerprints; Python tuples do not
    cache their hash, so using raw tuples as memo-dictionary keys re-walks
    the whole nested structure on every insert and lookup.  Wrapping the
    tuple keeps value equality while making repeated hashing O(1).
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple):
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CachedKey):
            return self.key == other.key
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachedKey({self.key!r})"


@dataclass(frozen=True, order=True)
class ColumnId:
    """A fully qualified column: range-variable alias plus column name.

    Aliases are unique per query (the binder guarantees it), so a
    ``ColumnId`` unambiguously identifies one column of one range variable
    even when the same table appears twice (e.g. ``nation n1, nation n2``
    in TPC-H Q7).  Derived columns (projection/aggregation outputs) use the
    empty alias.
    """

    alias: str
    column: str

    def __hash__(self) -> int:
        # Explicit cached hash (preserved by dataclass): ColumnIds appear in
        # the key tuples of tens of thousands of physical operators, so the
        # memo hashes the same instances over and over.
        h = self.__dict__.get("_cached_hash")
        if h is None:
            h = hash((self.alias, self.column))
            object.__setattr__(self, "_cached_hash", h)
        return h

    def render(self) -> str:
        if not self.alias:
            return self.column
        return f"{self.alias}.{self.column}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class Scalar:
    """Base class for scalar expression nodes."""

    def references(self) -> frozenset[ColumnId]:
        raise NotImplementedError

    def fingerprint(self) -> tuple:
        """Canonical hashable encoding used for MEMO duplicate detection.

        Memoized on the node: expression trees are immutable, and the
        optimizer fingerprints the same (interned) predicate objects for
        every memo insertion, so the recursive encoding is built once.
        """
        fp = self.__dict__.get("_fp")
        if fp is None:
            fp = self._fingerprint()
            object.__setattr__(self, "_fp", fp)
        return fp

    def _fingerprint(self) -> tuple:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def children(self) -> tuple["Scalar", ...]:
        return ()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@dataclass(frozen=True)
class ColumnRef(Scalar):
    """A reference to a bound column."""

    column_id: ColumnId

    def references(self) -> frozenset[ColumnId]:
        return frozenset((self.column_id,))

    def _fingerprint(self) -> tuple:
        return ("col", self.column_id.alias, self.column_id.column)

    def render(self) -> str:
        return self.column_id.render()


@dataclass(frozen=True)
class Literal(Scalar):
    """A constant: integer, float, or string (dates are ISO strings)."""

    value: int | float | str | None

    def references(self) -> frozenset[ColumnId]:
        return frozenset()

    def _fingerprint(self) -> tuple:
        return ("lit", type(self.value).__name__, self.value)

    def render(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


class CompOp(enum.Enum):
    """Comparison operators."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "CompOp":
        """The operator with operand sides exchanged (a < b  <=>  b > a)."""
        return {
            CompOp.EQ: CompOp.EQ,
            CompOp.NE: CompOp.NE,
            CompOp.LT: CompOp.GT,
            CompOp.LE: CompOp.GE,
            CompOp.GT: CompOp.LT,
            CompOp.GE: CompOp.LE,
        }[self]


@dataclass(frozen=True)
class Comparison(Scalar):
    """A binary comparison ``left op right``."""

    op: CompOp
    left: Scalar
    right: Scalar

    def references(self) -> frozenset[ColumnId]:
        return self.left.references() | self.right.references()

    def _fingerprint(self) -> tuple:
        # Canonicalize equality/inequality so that a = b and b = a get the
        # same fingerprint (join commutativity must not create "different"
        # predicates).
        lf = self.left.fingerprint()
        rf = self.right.fingerprint()
        op = self.op
        if op in (CompOp.EQ, CompOp.NE) and rf < lf:
            lf, rf = rf, lf
        elif op in (CompOp.GT, CompOp.GE):
            op = op.flipped()
            lf, rf = rf, lf
        return ("cmp", op.value, lf, rf)

    def render(self) -> str:
        return f"{self.left.render()} {self.op.value} {self.right.render()}"

    def children(self) -> tuple[Scalar, ...]:
        return (self.left, self.right)


class BoolOp(enum.Enum):
    AND = "AND"
    OR = "OR"
    NOT = "NOT"


@dataclass(frozen=True)
class BoolExpr(Scalar):
    """AND / OR / NOT over boolean arguments."""

    op: BoolOp
    args: tuple[Scalar, ...]

    def __post_init__(self) -> None:
        if self.op is BoolOp.NOT:
            if len(self.args) != 1:
                raise AlgebraError("NOT takes exactly one argument")
        elif len(self.args) < 2:
            raise AlgebraError(f"{self.op.value} needs at least two arguments")

    def references(self) -> frozenset[ColumnId]:
        out: frozenset[ColumnId] = frozenset()
        for arg in self.args:
            out |= arg.references()
        return out

    def _fingerprint(self) -> tuple:
        parts = [arg.fingerprint() for arg in self.args]
        if self.op in (BoolOp.AND, BoolOp.OR):
            parts.sort()
        return ("bool", self.op.value, tuple(parts))

    def render(self) -> str:
        if self.op is BoolOp.NOT:
            return f"NOT ({self.args[0].render()})"
        joiner = f" {self.op.value} "
        return "(" + joiner.join(arg.render() for arg in self.args) + ")"

    def children(self) -> tuple[Scalar, ...]:
        return self.args


@dataclass(frozen=True)
class Arithmetic(Scalar):
    """Binary arithmetic ``left op right`` with op in ``+ - * /``."""

    op: str
    left: Scalar
    right: Scalar

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise AlgebraError(f"unknown arithmetic operator {self.op!r}")

    def references(self) -> frozenset[ColumnId]:
        return self.left.references() | self.right.references()

    def _fingerprint(self) -> tuple:
        lf = self.left.fingerprint()
        rf = self.right.fingerprint()
        if self.op in ("+", "*") and rf < lf:
            lf, rf = rf, lf
        return ("arith", self.op, lf, rf)

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def children(self) -> tuple[Scalar, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryMinus(Scalar):
    """Numeric negation."""

    arg: Scalar

    def references(self) -> frozenset[ColumnId]:
        return self.arg.references()

    def _fingerprint(self) -> tuple:
        return ("neg", self.arg.fingerprint())

    def render(self) -> str:
        return f"(-{self.arg.render()})"

    def children(self) -> tuple[Scalar, ...]:
        return (self.arg,)


@dataclass(frozen=True)
class Like(Scalar):
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards (optionally negated)."""

    arg: Scalar
    pattern: str
    negated: bool = False

    def references(self) -> frozenset[ColumnId]:
        return self.arg.references()

    def _fingerprint(self) -> tuple:
        return ("like", self.negated, self.arg.fingerprint(), self.pattern)

    def render(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.arg.render()} {op} '{self.pattern}'"

    def children(self) -> tuple[Scalar, ...]:
        return (self.arg,)


@dataclass(frozen=True)
class InList(Scalar):
    """SQL ``IN (v1, v2, ...)`` over literal values."""

    arg: Scalar
    values: tuple[int | float | str, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.values:
            raise AlgebraError("IN list must be non-empty")

    def references(self) -> frozenset[ColumnId]:
        return self.arg.references()

    def _fingerprint(self) -> tuple:
        return (
            "in",
            self.negated,
            self.arg.fingerprint(),
            tuple(sorted(self.values, key=repr)),
        )

    def render(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        vals = ", ".join(Literal(v).render() for v in self.values)
        return f"{self.arg.render()} {op} ({vals})"

    def children(self) -> tuple[Scalar, ...]:
        return (self.arg,)


@dataclass(frozen=True)
class IsNull(Scalar):
    """SQL ``IS [NOT] NULL``."""

    arg: Scalar
    negated: bool = False

    def references(self) -> frozenset[ColumnId]:
        return self.arg.references()

    def _fingerprint(self) -> tuple:
        return ("isnull", self.negated, self.arg.fingerprint())

    def render(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.arg.render()} {op}"

    def children(self) -> tuple[Scalar, ...]:
        return (self.arg,)


class AggFunc(enum.Enum):
    """Aggregate functions supported by the engine."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@dataclass(frozen=True)
class AggregateCall(Scalar):
    """An aggregate function call; ``arg is None`` encodes ``COUNT(*)``."""

    func: AggFunc
    arg: Scalar | None

    def __post_init__(self) -> None:
        if self.arg is None and self.func is not AggFunc.COUNT:
            raise AlgebraError(f"{self.func.value}(*) is not valid SQL")

    def references(self) -> frozenset[ColumnId]:
        if self.arg is None:
            return frozenset()
        return self.arg.references()

    def _fingerprint(self) -> tuple:
        arg_fp = None if self.arg is None else self.arg.fingerprint()
        return ("agg", self.func.value, arg_fp)

    def render(self) -> str:
        inner = "*" if self.arg is None else self.arg.render()
        return f"{self.func.value}({inner})"

    def children(self) -> tuple[Scalar, ...]:
        return () if self.arg is None else (self.arg,)


def split_conjuncts(expr: Scalar | None) -> list[Scalar]:
    """Flatten nested ANDs into a list of conjuncts.

    ``None`` (no predicate) yields the empty list.  ORs and other boolean
    structure are kept intact as single conjuncts.
    """
    if expr is None:
        return []
    if isinstance(expr, BoolExpr) and expr.op is BoolOp.AND:
        out: list[Scalar] = []
        for arg in expr.args:
            out.extend(split_conjuncts(arg))
        return out
    return [expr]


def make_conjunction(conjuncts: list[Scalar]) -> Scalar | None:
    """Rebuild a predicate from conjuncts, canonically ordered.

    The conjuncts are sorted by fingerprint so that the same *set* of
    conjuncts always produces an identical expression object — the memo
    relies on this to deduplicate join operators that different
    transformation paths produce.
    """
    if not conjuncts:
        return None
    unique: dict[tuple, Scalar] = {}
    for conjunct in conjuncts:
        unique.setdefault(conjunct.fingerprint(), conjunct)
    ordered = [unique[fp] for fp in sorted(unique)]
    if len(ordered) == 1:
        return ordered[0]
    return BoolExpr(BoolOp.AND, tuple(ordered))
