"""Relational algebra: scalar expressions, logical/physical operators,
physical properties (system S5).

Logical operators describe *what* to compute (the relational algebra of the
bound query); physical operators describe *how* (hash join vs. merge join
vs. nested loops, table scan vs. index scan, ...).  Only physical operators
may appear in an executable plan — exactly the distinction drawn in
Section 2 of the paper.
"""

from repro.algebra.expressions import (
    AggFunc,
    AggregateCall,
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnId,
    ColumnRef,
    Comparison,
    CompOp,
    InList,
    IsNull,
    Like,
    Literal,
    Scalar,
    UnaryMinus,
    make_conjunction,
    split_conjuncts,
)
from repro.algebra.properties import (
    NO_ORDER,
    PhysicalProps,
    order_satisfies,
)
from repro.algebra.logical import (
    LogicalAggregate,
    LogicalGet,
    LogicalJoin,
    LogicalOperator,
    LogicalProject,
    LogicalSelect,
)
from repro.algebra.physical import (
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalFilter,
    PhysicalOperator,
    PhysicalProject,
    Sort,
    StreamAggregate,
    TableScan,
)

__all__ = [
    "AggFunc",
    "AggregateCall",
    "Arithmetic",
    "BoolExpr",
    "BoolOp",
    "ColumnId",
    "ColumnRef",
    "Comparison",
    "CompOp",
    "InList",
    "IsNull",
    "Like",
    "Literal",
    "Scalar",
    "UnaryMinus",
    "make_conjunction",
    "split_conjuncts",
    "NO_ORDER",
    "PhysicalProps",
    "order_satisfies",
    "LogicalAggregate",
    "LogicalGet",
    "LogicalJoin",
    "LogicalOperator",
    "LogicalProject",
    "LogicalSelect",
    "HashAggregate",
    "HashJoin",
    "IndexNestedLoopJoin",
    "IndexScan",
    "MergeJoin",
    "NestedLoopJoin",
    "PhysicalFilter",
    "PhysicalOperator",
    "PhysicalProject",
    "Sort",
    "StreamAggregate",
    "TableScan",
]
