"""Physical operators: the implementations that make up execution plans.

Each physical operator declares

* ``delivered_order()`` — the sort order of its output (a *static*
  physical property, e.g. an index scan delivers its key order, a hash
  join destroys order);
* ``required_child_order(i)`` — the order it demands of child ``i``
  (merge join needs both inputs sorted on the join keys, stream aggregate
  needs its input sorted on the grouping columns).

These two hooks are everything the paper's Section 3.1 preparatory step
needs: an operator links to a child-group alternative only if the
alternative's delivered order satisfies the requirement.

``Sort`` is an *enforcer*: a physical operator whose only job is to
establish a property.  Its child alternatives come from its own group
(see :mod:`repro.planspace.links` for how cycles are avoided).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    AggregateCall,
    CachedKey,
    ColumnId,
    Scalar,
)
from repro.algebra.properties import NO_ORDER, SortOrder
from repro.errors import AlgebraError

__all__ = [
    "PhysicalOperator",
    "TableScan",
    "IndexScan",
    "PhysicalFilter",
    "NestedLoopJoin",
    "HashJoin",
    "MergeJoin",
    "IndexNestedLoopJoin",
    "Sort",
    "HashAggregate",
    "StreamAggregate",
    "PhysicalProject",
]


class PhysicalOperator:
    """Base class for physical operators."""

    arity: int = 0
    #: enforcers establish properties rather than compute anything new
    is_enforcer: bool = False

    @property
    def name(self) -> str:
        return type(self).__name__

    def key(self) -> CachedKey:
        """Canonical hashable identity used for MEMO duplicate detection.

        Memoized per operator object — operators are immutable and the
        memo recomputes the key on every insertion and lookup.  The result
        is a hash-caching wrapper, so dictionary operations never re-walk
        the nested predicate fingerprints inside.
        """
        key = self.__dict__.get("_key_cache")
        if key is None:
            key = CachedKey(self._key())
            object.__setattr__(self, "_key_cache", key)
        return key

    def _key(self) -> tuple:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def delivered_order(self) -> SortOrder:
        """Sort order of this operator's output."""
        return NO_ORDER

    def required_child_order(self, child: int) -> SortOrder:
        """Sort order required of child number ``child`` (0-based)."""
        return NO_ORDER

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fp(predicate: Scalar | None) -> tuple | None:
    return None if predicate is None else predicate.fingerprint()


def _pred_str(predicate: Scalar | None) -> str:
    return "" if predicate is None else f" [{predicate.render()}]"


def _cols(columns: tuple[ColumnId, ...]) -> str:
    return ", ".join(c.render() for c in columns)


@dataclass(frozen=True)
class TableScan(PhysicalOperator):
    """Sequential scan of a base table; delivers no order."""

    table: str
    alias: str
    predicate: Scalar | None = None

    arity = 0

    def _key(self) -> tuple:
        return ("tablescan", self.table, self.alias, _fp(self.predicate))

    def render(self) -> str:
        return f"TableScan({self.table} AS {self.alias}){_pred_str(self.predicate)}"


@dataclass(frozen=True)
class IndexScan(PhysicalOperator):
    """Scan of a sorted index; delivers the index key order.

    ``key_order`` is the index key translated to this range variable's
    alias, so ``lineitem_partkey`` scanned as alias ``l`` delivers order
    ``(l.l_partkey,)``.
    """

    table: str
    alias: str
    index_name: str
    key_order: tuple[ColumnId, ...]
    predicate: Scalar | None = None

    arity = 0

    def __post_init__(self) -> None:
        if not self.key_order:
            raise AlgebraError("IndexScan requires a non-empty key order")

    def _key(self) -> tuple:
        return (
            "indexscan",
            self.table,
            self.alias,
            self.index_name,
            _fp(self.predicate),
        )

    def render(self) -> str:
        return (
            f"IndexScan({self.table} AS {self.alias} USING {self.index_name})"
            f"{_pred_str(self.predicate)}"
        )

    def delivered_order(self) -> SortOrder:
        return self.key_order


@dataclass(frozen=True)
class PhysicalFilter(PhysicalOperator):
    """Filter rows by a residual predicate; order-preserving in reality,
    but conservatively declared order-destroying (static property model)."""

    predicate: Scalar

    arity = 1

    def _key(self) -> tuple:
        return ("filter", _fp(self.predicate))

    def render(self) -> str:
        return f"Filter{_pred_str(self.predicate)}"


@dataclass(frozen=True)
class NestedLoopJoin(PhysicalOperator):
    """Tuple-at-a-time nested-loops join; the only join that accepts an
    arbitrary (or empty, i.e. Cartesian) predicate."""

    predicate: Scalar | None = None

    arity = 2

    def _key(self) -> tuple:
        return ("nlj", _fp(self.predicate))

    def render(self) -> str:
        return f"NestedLoopJoin{_pred_str(self.predicate)}"


@dataclass(frozen=True)
class HashJoin(PhysicalOperator):
    """Hash join on equality keys; builds on the right, probes with the left.

    ``residual`` holds non-equality conjuncts evaluated after the hash
    match.  Destroys order.
    """

    left_keys: tuple[ColumnId, ...]
    right_keys: tuple[ColumnId, ...]
    residual: Scalar | None = None

    arity = 2

    def __post_init__(self) -> None:
        if not self.left_keys or len(self.left_keys) != len(self.right_keys):
            raise AlgebraError("HashJoin requires matching, non-empty key lists")

    def _key(self) -> tuple:
        # ColumnId is a frozen value type: the key tuples are usable directly
        # (building per-column subtuples here was a memo-insertion hot spot).
        return ("hashjoin", self.left_keys, self.right_keys, _fp(self.residual))

    def render(self) -> str:
        keys = ", ".join(
            f"{l.render()}={r.render()}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin({keys}){_pred_str(self.residual)}"


@dataclass(frozen=True)
class MergeJoin(PhysicalOperator):
    """Sort-merge join; requires both inputs sorted on the join keys and
    delivers the left key order."""

    left_keys: tuple[ColumnId, ...]
    right_keys: tuple[ColumnId, ...]
    residual: Scalar | None = None

    arity = 2

    def __post_init__(self) -> None:
        if not self.left_keys or len(self.left_keys) != len(self.right_keys):
            raise AlgebraError("MergeJoin requires matching, non-empty key lists")

    def _key(self) -> tuple:
        return ("mergejoin", self.left_keys, self.right_keys, _fp(self.residual))

    def render(self) -> str:
        keys = ", ".join(
            f"{l.render()}={r.render()}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"MergeJoin({keys}){_pred_str(self.residual)}"

    def delivered_order(self) -> SortOrder:
        return self.left_keys

    def required_child_order(self, child: int) -> SortOrder:
        return self.left_keys if child == 0 else self.right_keys


@dataclass(frozen=True)
class IndexNestedLoopJoin(PhysicalOperator):
    """Index lookup join: for each outer row, seek the inner table's index.

    The inner side is not a memo child — the operator *owns* the inner
    table access (SQL Server's "index lookup" style), so the operator has
    arity 1 (the outer input).  ``outer_keys[i]`` probes the index key
    prefix ``inner_keys[i]``; ``inner_predicate`` is the inner table's
    pushed-down filter; ``residual`` holds join conjuncts the index seek
    does not cover.

    This is the paper's "index utilization" dimension of the plan space
    beyond plain scans; it is generated only when
    ``ImplementationConfig.enable_index_nl_join`` is on.
    """

    inner_table: str
    inner_alias: str
    index_name: str
    outer_keys: tuple[ColumnId, ...]
    inner_keys: tuple[ColumnId, ...]
    inner_predicate: Scalar | None = None
    residual: Scalar | None = None

    arity = 1

    def __post_init__(self) -> None:
        if not self.outer_keys or len(self.outer_keys) != len(self.inner_keys):
            raise AlgebraError(
                "IndexNestedLoopJoin requires matching, non-empty key lists"
            )

    def _key(self) -> tuple:
        return (
            "indexnlj",
            self.inner_table,
            self.inner_alias,
            self.index_name,
            self.outer_keys,
            self.inner_keys,
            _fp(self.inner_predicate),
            _fp(self.residual),
        )

    def render(self) -> str:
        keys = ", ".join(
            f"{o.render()}={i.render()}"
            for o, i in zip(self.outer_keys, self.inner_keys)
        )
        return (
            f"IndexNLJoin({self.inner_table} AS {self.inner_alias} "
            f"USING {self.index_name}; {keys}){_pred_str(self.residual)}"
        )


@dataclass(frozen=True)
class Sort(PhysicalOperator):
    """Sort enforcer: establishes ``order`` over its (same-group) child."""

    order: tuple[ColumnId, ...]

    arity = 1
    is_enforcer = True

    def __post_init__(self) -> None:
        if not self.order:
            raise AlgebraError("Sort requires a non-empty order")

    def _key(self) -> tuple:
        return ("sort", self.order)

    def render(self) -> str:
        return f"Sort({_cols(self.order)})"

    def delivered_order(self) -> SortOrder:
        return self.order


@dataclass(frozen=True)
class HashAggregate(PhysicalOperator):
    """Hash-based grouping; no input requirement, destroys order."""

    group_by: tuple[ColumnId, ...]
    aggregates: tuple[tuple[str, AggregateCall], ...]

    arity = 1

    def _key(self) -> tuple:
        return (
            "hashagg",
            tuple((c.alias, c.column) for c in self.group_by),
            tuple((name, call.fingerprint()) for name, call in self.aggregates),
        )

    def render(self) -> str:
        return f"HashAggregate(by {_cols(self.group_by) or '()'})"


@dataclass(frozen=True)
class StreamAggregate(PhysicalOperator):
    """Streaming grouping; requires input sorted on the grouping columns
    and delivers that order.  A scalar aggregate (no grouping columns)
    requires nothing."""

    group_by: tuple[ColumnId, ...]
    aggregates: tuple[tuple[str, AggregateCall], ...]

    arity = 1

    def _key(self) -> tuple:
        return (
            "streamagg",
            tuple((c.alias, c.column) for c in self.group_by),
            tuple((name, call.fingerprint()) for name, call in self.aggregates),
        )

    def render(self) -> str:
        return f"StreamAggregate(by {_cols(self.group_by) or '()'})"

    def delivered_order(self) -> SortOrder:
        return self.group_by

    def required_child_order(self, child: int) -> SortOrder:
        return self.group_by


@dataclass(frozen=True)
class PhysicalProject(PhysicalOperator):
    """Compute the projection list; conservatively destroys order."""

    outputs: tuple[tuple[str, Scalar], ...]

    arity = 1

    def _key(self) -> tuple:
        return (
            "projectop",
            tuple((name, expr.fingerprint()) for name, expr in self.outputs),
        )

    def render(self) -> str:
        cols = ", ".join(f"{expr.render()} AS {name}" for name, expr in self.outputs)
        return f"Project({cols})"
