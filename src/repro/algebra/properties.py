"""Physical properties: sort order.

The paper's Section 3.1 observes that operators in the same group may
differ in physical properties — one scan delivers a sort order, another
does not — and that a parent requiring a property may only link to the
child alternatives that satisfy it.  We model the single most important
physical property, *sort order*, the one SQL Server's merge join and
stream aggregate depend on.

An order is a tuple of :class:`~repro.algebra.expressions.ColumnId`
(ascending; descending orders are out of scope, as in most of the
optimizer literature's property examples).  A delivered order *satisfies*
a required order when the requirement is a prefix of the delivery:
rows sorted on ``(a, b)`` are certainly sorted on ``(a,)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import ColumnId

__all__ = ["SortOrder", "NO_ORDER", "order_satisfies", "PhysicalProps"]

SortOrder = tuple[ColumnId, ...]

#: The empty requirement / delivery: no particular order.
NO_ORDER: SortOrder = ()


def order_satisfies(delivered: SortOrder, required: SortOrder) -> bool:
    """True if rows in ``delivered`` order are also in ``required`` order."""
    if len(required) > len(delivered):
        return False
    return delivered[: len(required)] == required


@dataclass(frozen=True)
class PhysicalProps:
    """The physical properties of an operator's output.

    Currently just the sort order; wrapped in a dataclass so additional
    properties (partitioning for parallel plans, for example) can be added
    without touching call sites.
    """

    order: SortOrder = NO_ORDER

    def satisfies(self, required: "PhysicalProps") -> bool:
        return order_satisfies(self.order, required.order)

    def is_trivial(self) -> bool:
        """True when this property imposes no requirement at all."""
        return not self.order

    def render(self) -> str:
        if not self.order:
            return "(any)"
        return "order by " + ", ".join(c.render() for c in self.order)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


ANY_PROPS = PhysicalProps()
