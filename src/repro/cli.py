"""Command-line interface.

Exposes the paper's primitives over the bundled TPC-H micro database::

    python -m repro count Q5 --cross-products
    python -m repro explain "SELECT ... FROM ..."
    python -m repro unrank Q3 13
    python -m repro sample Q5 -n 10 --analyze
    python -m repro execute "SELECT ... OPTION (USEPLAN 8)"
    python -m repro validate Q3 --sample 100
    python -m repro table1 --samples 2000 --queries Q5,Q9

Query arguments accept either a named TPC-H query (``Q3``, ``Q5``, ...)
or literal SQL.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import Session
from repro.errors import (
    BudgetError,
    Cancelled,
    ReproError,
    ResourceExhausted,
    TimeoutExceeded,
)
from repro.experiments.analysis import analyze_plans
from repro.experiments.distributions import distribution_from_result
from repro.experiments.figure4 import figure4_histogram
from repro.experiments.table1 import render_table1
from repro.optimizer.optimizer import OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.testing.harness import PlanValidator
from repro.workloads.tpch_queries import TPCH_QUERIES

__all__ = ["main", "build_parser"]


def _resolve_sql(query: str) -> str:
    named = TPCH_QUERIES.get(query.upper())
    if named is not None:
        return named.sql
    if "select" not in query.lower():
        known = ", ".join(sorted(TPCH_QUERIES))
        raise ReproError(
            f"{query!r} is neither a known TPC-H query ({known}) nor SQL"
        )
    return query


def _session(args) -> Session:
    options = OptimizerOptions(allow_cross_products=args.cross_products)
    return Session.tpch(seed=args.data_seed, options=options)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Counting, enumerating, and sampling of execution plans "
        "(Waas & Galindo-Legaria, SIGMOD 2000).",
    )
    parser.add_argument(
        "--cross-products",
        action="store_true",
        help="allow Cartesian products in the search space",
    )
    parser.add_argument(
        "--data-seed", type=int, default=0, help="micro database seed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    count = sub.add_parser("count", help="count the plan space of a query")
    count.add_argument("query", help="TPC-H query name or SQL")
    count.add_argument(
        "--implicit",
        action="store_true",
        help="count from the logical memo only (no physical memo is built; "
        "orders of magnitude faster on large join spaces)",
    )

    optimize = sub.add_parser(
        "optimize",
        help="optimize a query (exhaustive memo, or --sampled for the "
        "memo-free sampling-driven path)",
    )
    optimize.add_argument("query", help="TPC-H query name or SQL")
    optimize.add_argument(
        "--sampled",
        action="store_true",
        help="sample + recombine over the implicit engine instead of "
        "building the physical memo (seconds on clique-sized spaces)",
    )
    optimize.add_argument(
        "--prune-factor",
        type=float,
        default=None,
        help="apply cost-bound pruning after implementation: drop "
        "physical alternatives whose best rooted cost exceeds FACTOR x "
        "the group optimum (>= 1.0; the best plan always survives)",
    )
    optimize.add_argument(
        "--samples", type=int, default=None, help="sample budget (fixed-k)"
    )
    optimize.add_argument("--seed", type=int, default=None)
    optimize.add_argument(
        "--budget-s",
        type=float,
        default=None,
        help="wall-clock budget in seconds (anytime: best plan so far)",
    )
    optimize.add_argument(
        "--rule",
        choices=("fixed", "plateau", "quantile"),
        default=None,
        help="stopping rule (default: plateau; fixed needs --samples)",
    )
    optimize.add_argument(
        "--quantile",
        type=float,
        default=None,
        help="target quantile for --rule quantile (default 1e-4)",
    )
    optimize.add_argument(
        "--confidence",
        type=float,
        default=None,
        help="confidence for --rule quantile (default 0.95)",
    )
    optimize.add_argument(
        "--uniform",
        action="store_true",
        help="plain uniform sampling instead of stratified batches",
    )
    optimize.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="wall-clock deadline for exhaustive optimization; on expiry "
        "the degradation ladder (exact -> sampled -> greedy) still serves "
        "an executable plan",
    )
    optimize.add_argument(
        "--on-budget",
        choices=("degrade", "raise"),
        default="degrade",
        help="what to do when the deadline bites: serve a degraded plan "
        "(default) or fail with a budget error",
    )
    optimize.add_argument(
        "--feedback",
        metavar="LEDGER.json",
        default=None,
        help="re-cost under a saved cardinality ledger (see `execute "
        "--feedback-out` / `accuracy`): observed subplan cardinalities "
        "replace the estimates, and the chosen-plan delta is reported",
    )
    optimize.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print engine, phase timings, the feedback re-costing "
        "delta (with --feedback), and — when a deadline triggered "
        "degradation — the tier-by-tier attempt log",
    )

    trace = sub.add_parser(
        "trace",
        help="optimize under the observability layer: nested phase spans "
        "with wall time and counters, plus hot-loop metrics",
    )
    trace.add_argument("query", help="TPC-H query name or SQL")
    trace.add_argument(
        "--sampled",
        action="store_true",
        help="trace the memo-free sampled optimizer instead",
    )
    trace.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="run under a deadline (traces the degradation ladder's tiers)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit {trace, metrics} as JSON instead of rendered tables",
    )
    trace.add_argument(
        "--chrome-trace",
        metavar="OUT.json",
        default=None,
        help="additionally write the span tree as Chrome trace-event "
        "JSON (load in chrome://tracing or ui.perfetto.dev)",
    )

    accuracy = sub.add_parser(
        "accuracy",
        help="estimation-accuracy report (q-error summary and worst "
        "subplans) from a cardinality ledger",
    )
    accuracy.add_argument(
        "--ledger",
        metavar="LEDGER.json",
        default=None,
        help="report on a saved ledger instead of executing --queries",
    )
    accuracy.add_argument(
        "--queries",
        default="Q3",
        help="comma-separated queries to execute instrumented when no "
        "--ledger is given (default: Q3)",
    )
    accuracy.add_argument(
        "--worst", type=int, default=5, help="worst offenders to list"
    )
    accuracy.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of a rendered summary",
    )

    metrics = sub.add_parser(
        "metrics",
        help="optimize a query instrumented and dump the session metrics "
        "registry (Prometheus text exposition by default)",
    )
    metrics.add_argument("query", help="TPC-H query name or SQL")
    metrics.add_argument(
        "--execute",
        action="store_true",
        help="also execute the chosen plan instrumented (adds the "
        "execute.operator series)",
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="emit the registry snapshot as JSON instead of Prometheus "
        "text",
    )

    serve = sub.add_parser(
        "serve",
        help="load-drive the plan-serving front end: a thread-pool of "
        "clients firing queries through the fingerprint plan cache, "
        "reporting QPS, latency percentiles and cache counters",
    )
    serve.add_argument(
        "--queries",
        default="Q3,Q5",
        help="comma-separated TPC-H query names or SQL, cycled across "
        "requests (default: Q3,Q5)",
    )
    serve.add_argument(
        "--clients", type=int, default=8, help="worker threads (default: 8)"
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=64,
        help="total requests to serve (default: 64)",
    )
    serve.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="per-request optimization deadline (degrades, never stalls)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve uncached (every request optimizes from scratch; the "
        "cold baseline)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the server stats as JSON instead of a rendered summary",
    )

    distribution = sub.add_parser(
        "distribution",
        help="cost-distribution analytics over a uniform plan sample "
        "(memo-free by default; --materialized scales to the true optimum)",
    )
    distribution.add_argument("query", help="TPC-H query name or SQL")
    distribution.add_argument("--samples", type=int, default=1000)
    distribution.add_argument("--seed", type=int, default=0)
    distribution.add_argument(
        "--materialized",
        action="store_true",
        help="build the memo and scale costs to the optimizer's best plan",
    )
    distribution.add_argument(
        "--stratified",
        action="store_true",
        help="stratify the sample across plan-shape strata (memo-free only)",
    )

    explain = sub.add_parser("explain", help="show the optimizer's plan")
    explain.add_argument("query")
    explain.add_argument(
        "--verbose",
        action="store_true",
        help="include per-operator cardinalities and costs",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the plan with operator instrumentation and show "
        "estimated vs. actual rows (and the q-error) per node",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="with --analyze: emit the per-operator stats as JSON",
    )

    unrank = sub.add_parser("unrank", help="print plan number RANK")
    unrank.add_argument("query")
    unrank.add_argument("rank", type=int)
    unrank.add_argument(
        "--trace", action="store_true", help="show the R/s recurrence trace"
    )

    sample = sub.add_parser("sample", help="uniformly sample plans")
    sample.add_argument("query")
    sample.add_argument("-n", type=int, default=10, help="sample size")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument(
        "--analyze", action="store_true", help="aggregate shape/operator stats"
    )
    sample.add_argument(
        "--implicit",
        action="store_true",
        help="sample without materializing the physical memo (same seed "
        "draws the same ranks as the materialized path; plan costs are "
        "printed unscaled because no best plan is computed)",
    )

    execute = sub.add_parser(
        "execute", help="run a query (honours OPTION (USEPLAN n))"
    )
    execute.add_argument("query")
    execute.add_argument("--limit", type=int, default=20, help="rows to print")
    execute.add_argument(
        "--feedback-out",
        metavar="LEDGER.json",
        default=None,
        help="execute instrumented and save the observed subplan "
        "cardinalities as a ledger (consumed by `optimize --feedback`); "
        "an existing ledger at the path is folded into, not replaced",
    )

    validate = sub.add_parser(
        "validate", help="execute many plans, verify identical results"
    )
    validate.add_argument("query")
    validate.add_argument("--sample", type=int, default=100)
    validate.add_argument("--exhaustive-limit", type=int, default=200)
    validate.add_argument("--seed", type=int, default=0)

    table1 = sub.add_parser("table1", help="reproduce the paper's Table 1")
    table1.add_argument("--samples", type=int, default=1000)
    table1.add_argument(
        "--queries", default="Q5,Q7,Q8,Q9", help="comma-separated query names"
    )

    figure4 = sub.add_parser("figure4", help="reproduce a Figure 4 panel")
    figure4.add_argument("query")
    figure4.add_argument("--samples", type=int, default=1000)

    participation = sub.add_parser(
        "participation",
        help="exact per-operator participation counts (plans containing v)",
    )
    participation.add_argument("query")

    diff = sub.add_parser(
        "diff", help="diff the plan space against a configuration variant"
    )
    diff.add_argument("query")
    diff.add_argument("--no-merge-join", action="store_true")
    diff.add_argument("--no-hash-join", action="store_true")
    diff.add_argument("--no-index-scans", action="store_true")
    diff.add_argument("--index-joins", action="store_true")

    corpus_build = sub.add_parser(
        "corpus-build", help="record golden plan digests to a JSON file"
    )
    corpus_build.add_argument("path")
    corpus_build.add_argument(
        "--queries", default="Q3", help="comma-separated query names or SQL"
    )
    corpus_build.add_argument("--plans", type=int, default=20)
    corpus_build.add_argument("--seed", type=int, default=0)

    corpus_verify = sub.add_parser(
        "corpus-verify", help="replay a golden corpus against this engine"
    )
    corpus_verify.add_argument("path")
    return parser


def _cmd_count(args, out) -> int:
    session = _session(args)
    sql = _resolve_sql(args.query)
    if args.implicit:
        handle = session.plan_space(sql, count_only=True)
        space = handle.space
        out.write(
            f"groups: {space.group_count()}\n"
            f"logical operators: {space.logical_operator_count()}\n"
            f"physical operators: {space.physical_operator_count()} (virtual)\n"
            f"plans: {space.count():,}\n"
        )
        return 0
    result = session.optimize(sql)
    space = PlanSpace.from_result(result)
    memo = result.memo
    out.write(
        f"groups: {len(memo.groups)}\n"
        f"logical operators: {memo.logical_expression_count()}\n"
        f"physical operators: {memo.physical_expression_count()}\n"
        f"plans: {space.count():,}\n"
    )
    return 0


def _cmd_optimize(args, out) -> int:
    session = _session(args)
    sql = _resolve_sql(args.query)
    sampled_flags = [
        ("--samples", args.samples is not None),
        ("--seed", args.seed is not None),
        ("--budget-s", args.budget_s is not None),
        ("--rule", args.rule is not None),
        ("--quantile", args.quantile is not None),
        ("--confidence", args.confidence is not None),
        ("--uniform", args.uniform),
    ]
    if not args.sampled:
        offending = [name for name, given in sampled_flags if given]
        if offending:
            raise ReproError(
                f"{', '.join(offending)} require(s) --sampled "
                "(the exhaustive optimizer takes no sampling arguments)"
            )
        result = session.optimize(
            sql,
            prune_factor=args.prune_factor,
            deadline_s=args.deadline_s,
            on_budget=args.on_budget,
            feedback=args.feedback,
        )
        report = getattr(result, "resilience", None)
        if report is not None:
            out.write(report.describe() + "\n")
        feedback = getattr(result, "feedback", None)
        if feedback is not None:
            out.write(feedback.describe() + "\n")
        elif args.feedback is not None:
            out.write(
                "feedback: ledger holds no observations for this query\n"
            )
        if args.verbose:
            engine = getattr(result, "engine", None)
            if engine is not None:
                line = f"engine: {engine}"
                reason = getattr(result, "fallback_reason", None)
                if reason:
                    line += f" (fallback: {reason})"
                out.write(line + "\n")
            kernel = getattr(result, "kernel", None)
            if kernel is not None:
                out.write(f"kernel: {kernel}\n")
            dp_stats = getattr(result, "dp_stats", None)
            if dp_stats is not None:
                out.write(
                    f"dp: states={dp_stats['states']} "
                    f"pruned_states={dp_stats['pruned']}\n"
                )
            timings = getattr(result, "timings", None)
            if timings:
                rendered = "  ".join(
                    f"{name} {seconds * 1000.0:.1f}ms"
                    for name, seconds in timings.items()
                    if isinstance(seconds, float)
                )
                out.write(f"timings: {rendered}\n")
            if feedback is not None:
                out.write(
                    f"feedback: plan_changed={feedback.plan_changed} "
                    f"substituted={feedback.substituted} "
                    f"baseline_cost={feedback.baseline_cost:,.1f} "
                    f"baseline_under_observed="
                    f"{feedback.baseline_cost_feedback:,.1f} "
                    f"chosen_under_observed={feedback.feedback_cost:,.1f} "
                    f"improvement={feedback.improvement_factor:.2f}x\n"
                )
            if report is not None:
                out.write(
                    f"resilience: tier={report.tier} "
                    f"trigger={report.trigger or '(none)'}\n"
                )
                for attempt in report.attempts:
                    detail = f"  {attempt.detail}" if attempt.detail else ""
                    out.write(
                        f"  {attempt.tier}: {attempt.outcome} "
                        f"({attempt.elapsed_s:.3f}s){detail}\n"
                    )
        if args.prune_factor is not None:
            out.write(
                f"pruned to {result.memo.physical_expression_count()} "
                f"physical operators (factor {args.prune_factor:g})\n"
            )
        out.write(result.explain() + "\n")
        return 0

    if args.prune_factor is not None:
        raise ReproError(
            "--prune-factor applies to the exhaustive optimizer only "
            "(drop --sampled)"
        )
    if args.deadline_s is not None:
        raise ReproError(
            "--deadline-s drives the exhaustive degradation ladder; the "
            "sampled path takes --budget-s (drop --sampled or use that)"
        )
    if args.feedback is not None:
        raise ReproError(
            "--feedback applies to the exhaustive optimizer only "
            "(the sampled path re-estimates per batch; drop --sampled)"
        )

    from repro.sampledopt import make_rule

    if args.rule == "fixed" and args.samples is None:
        raise ReproError("--rule fixed needs an explicit --samples budget")
    if args.rule != "quantile" and (
        args.quantile is not None or args.confidence is not None
    ):
        raise ReproError(
            "--quantile/--confidence apply to --rule quantile only"
        )
    rule = (
        make_rule(
            args.rule,
            samples=args.samples,
            quantile=args.quantile if args.quantile is not None else 1e-4,
            confidence=args.confidence if args.confidence is not None else 0.95,
        )
        if args.rule is not None
        else None
    )
    result = session.optimize(
        sql,
        method="sampled",
        samples=args.samples,
        budget_s=args.budget_s,
        rule=rule,
        seed=args.seed if args.seed is not None else 0,
        stratified=False if args.uniform else None,
    )
    out.write(result.describe() + "\n")
    if args.verbose and result.timings:
        rendered = "  ".join(
            f"{name} {seconds * 1000.0:.1f}ms"
            for name, seconds in result.timings.items()
            if isinstance(seconds, float)
        )
        out.write(f"timings: {rendered}\n")
    out.write(result.explain() + "\n")
    return 0


def _cmd_trace(args, out) -> int:
    import json

    session = _session(args)
    sql = _resolve_sql(args.query)
    if args.sampled:
        if args.deadline_s is not None:
            raise ReproError(
                "--deadline-s drives the exhaustive degradation ladder; "
                "drop --sampled to trace it"
            )
        result = session.optimize(sql, method="sampled", trace=True)
    else:
        result = session.optimize(
            sql, deadline_s=args.deadline_s, trace=True
        )
    span = result.trace
    if args.chrome_trace is not None:
        import pathlib

        payload = {"traceEvents": span.to_chrome_trace()}
        pathlib.Path(args.chrome_trace).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        out.write(
            f"wrote {len(payload['traceEvents'])} trace events to "
            f"{args.chrome_trace}\n"
        )
    if args.json:
        payload = {
            "trace": span.to_dict(),
            "metrics": session.metrics.snapshot(),
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0
    out.write(span.render() + "\n")
    metrics = session.metrics
    if metrics:
        out.write("\n" + metrics.render() + "\n")
    report = getattr(result, "resilience", None)
    if report is not None:
        out.write("\n" + report.describe() + "\n")
    return 0


def _cmd_distribution(args, out) -> int:
    session = _session(args)
    sql = _resolve_sql(args.query)
    name = args.query.upper() if args.query.upper() in TPCH_QUERIES else "query"
    if args.materialized and args.stratified:
        raise ReproError(
            "--stratified applies to the memo-free sampler only "
            "(drop --materialized)"
        )
    from repro.sampledopt import distribution_report

    dist = session.cost_distribution(
        sql,
        query_name=name,
        sample_size=args.samples,
        seed=args.seed,
        materialized=args.materialized,
        stratified=args.stratified,
    )
    out.write(
        distribution_report(dist, scaled_to_optimum=args.materialized) + "\n"
    )
    return 0


def _cmd_explain(args, out) -> int:
    session = _session(args)
    sql = _resolve_sql(args.query)
    if args.json and not args.analyze:
        raise ReproError("--json requires --analyze")
    if args.analyze:
        if args.verbose:
            raise ReproError("--analyze and --verbose are mutually exclusive")
        if args.json:
            import json

            executed = session.execute_detailed(sql, analyze=True)
            payload = {
                "best_cost": executed.optimization.best_cost,
                "stats": executed.result.stats.to_dict(),
            }
            out.write(json.dumps(payload, indent=2) + "\n")
            return 0
        out.write(session.explain(sql, analyze=True) + "\n")
        return 0
    if args.verbose:
        from repro.optimizer.explain import explain_plan

        result = session.optimize(sql)
        out.write(explain_plan(result.best_plan, result.cost_model) + "\n")
        return 0
    out.write(session.explain(sql) + "\n")
    return 0


def _cmd_unrank(args, out) -> int:
    session = _session(args)
    space = session.plan_space(_resolve_sql(args.query))
    if args.trace:
        plan, trace = space.unrank_with_trace(args.rank)
        out.write(trace.render() + "\n\n")
    else:
        plan = space.unrank(args.rank)
    out.write(plan.render() + "\n")
    return 0


def _cmd_sample(args, out) -> int:
    session = _session(args)
    sql = _resolve_sql(args.query)
    if args.implicit:
        from repro.optimizer.cost import CostModel

        handle = session.plan_space(sql, count_only=True)
        ranks = handle.sample_ranks(args.n, seed=args.seed)
        plans = [handle.unrank(rank) for rank in ranks]
        cost_model = CostModel(session.catalog, session.options.cost_params)
        out.write(
            f"space: {handle.count():,} plans; sampled {args.n} (implicit)\n"
        )
        for rank, plan in zip(ranks, plans):
            cost = cost_model.plan_cost(plan)
            shape = " -> ".join(node.op.name for node in plan.iter_nodes())
            out.write(f"  #{rank}  cost {cost:,.1f}  [{shape}]\n")
        if args.analyze:
            out.write("\n" + analyze_plans(plans).render() + "\n")
        return 0
    result = session.optimize(sql)
    space = PlanSpace.from_result(result)
    ranks = space.sample_ranks(args.n, seed=args.seed)
    plans = [space.unrank(rank) for rank in ranks]
    out.write(f"space: {space.count():,} plans; sampled {args.n}\n")
    for rank, plan in zip(ranks, plans):
        cost = result.cost_model.plan_cost(plan)
        scaled = cost / result.best_cost
        shape = " -> ".join(node.op.name for node in plan.iter_nodes())
        out.write(f"  #{rank}  cost {scaled:,.1f}x optimum  [{shape}]\n")
    if args.analyze:
        out.write("\n" + analyze_plans(plans).render() + "\n")
    return 0


def _cmd_execute(args, out) -> int:
    import pathlib

    session = _session(args)
    if args.feedback_out is not None:
        from repro.obs import CardinalityLedger

        # Fold into an existing ledger so repeated runs accumulate EWMA
        # history instead of starting over.
        if pathlib.Path(args.feedback_out).exists():
            session.ledger = CardinalityLedger.load(args.feedback_out)
        result = session.execute(_resolve_sql(args.query), feedback=True)
        session.ledger.save(args.feedback_out)
        out.write(result.render(limit=args.limit) + "\n")
        out.write(
            f"ledger: {len(session.ledger)} subplans -> {args.feedback_out}\n"
        )
        return 0
    result = session.execute(_resolve_sql(args.query))
    out.write(result.render(limit=args.limit) + "\n")
    return 0


def _cmd_accuracy(args, out) -> int:
    import json

    from repro.obs import CardinalityLedger, accuracy_report

    if args.ledger is not None:
        ledger = CardinalityLedger.load(args.ledger)
        report = accuracy_report(ledger, worst_limit=args.worst)
    else:
        session = _session(args)
        for name in args.queries.split(","):
            session.execute(_resolve_sql(name.strip()), feedback=True)
        report = session.estimation_report(worst_limit=args.worst)
    if args.json:
        out.write(json.dumps(report.to_dict(), indent=2) + "\n")
        return 0
    out.write(report.render() + "\n")
    return 0


def _cmd_metrics(args, out) -> int:
    import json

    session = _session(args)
    sql = _resolve_sql(args.query)
    session.optimize(sql, trace=True)
    if args.execute:
        session.execute_detailed(sql, analyze=True)
    if args.json:
        out.write(json.dumps(session.metrics.snapshot(), indent=2) + "\n")
        return 0
    out.write(session.metrics.render_prometheus())
    return 0


def _cmd_validate(args, out) -> int:
    session = _session(args)
    validator = PlanValidator(session.database, session.options)
    report = validator.validate_sql(
        _resolve_sql(args.query),
        max_exhaustive=args.exhaustive_limit,
        sample_size=args.sample,
        seed=args.seed,
    )
    out.write(report.render() + "\n")
    return 0 if report.all_equal else 1


def _cmd_table1(args, out) -> int:
    session = _session(args)
    distributions = []
    for cross in (False, True):
        for name in args.queries.split(","):
            options = OptimizerOptions(allow_cross_products=cross)
            sql = _resolve_sql(name.strip())
            from repro.optimizer.optimizer import Optimizer

            result = Optimizer(session.catalog, options).optimize_sql(sql)
            distributions.append(
                distribution_from_result(
                    result, name.strip().upper(), sample_size=args.samples
                )
            )
    out.write(render_table1(distributions) + "\n")
    return 0


def _cmd_figure4(args, out) -> int:
    session = _session(args)
    result = session.optimize(_resolve_sql(args.query))
    dist = distribution_from_result(
        result, args.query.upper(), sample_size=args.samples
    )
    out.write(figure4_histogram(dist).render() + "\n")
    shape = dist.gamma_shape()
    if shape is not None:
        out.write(f"gamma shape: {shape:.3f}\n")
    return 0


def _cmd_participation(args, out) -> int:
    from repro.planspace.participation import participation_report

    session = _session(args)
    space = session.plan_space(_resolve_sql(args.query))
    out.write(participation_report(space.linked) + "\n")
    return 0


def _cmd_diff(args, out) -> int:
    from repro.optimizer.implementation import ImplementationConfig
    from repro.optimizer.optimizer import Optimizer
    from repro.planspace.diff import diff_spaces
    from repro.planspace.links import materialize_links

    session = _session(args)
    sql = _resolve_sql(args.query)

    def build(config: ImplementationConfig):
        options = OptimizerOptions(
            allow_cross_products=args.cross_products, implementation=config
        )
        result = Optimizer(session.catalog, options).optimize_sql(sql)
        return materialize_links(result.memo, root_required=result.root_order)

    baseline = build(ImplementationConfig())
    candidate = build(
        ImplementationConfig(
            enable_merge_join=not args.no_merge_join,
            enable_hash_join=not args.no_hash_join,
            enable_index_scans=not args.no_index_scans,
            enable_index_nl_join=args.index_joins,
        )
    )
    out.write(diff_spaces(baseline, candidate).render() + "\n")
    return 0


def _cmd_corpus_build(args, out) -> int:
    from repro.testing.corpus import build_corpus

    session = _session(args)
    # Raw SQL contains commas of its own; only a list of names is split.
    if "select" in args.queries.lower():
        queries = [args.queries]
    else:
        queries = [_resolve_sql(q.strip()) for q in args.queries.split(",")]
    corpus = build_corpus(
        session, queries, plans_per_query=args.plans, seed=args.seed
    )
    corpus.save(args.path)
    out.write(f"recorded {len(corpus.records)} golden plans to {args.path}\n")
    return 0


def _cmd_corpus_verify(args, out) -> int:
    from repro.testing.corpus import PlanCorpus, verify_corpus

    session = _session(args)
    corpus = PlanCorpus.load(args.path)
    verification = verify_corpus(session, corpus)
    out.write(verification.render() + "\n")
    return 0 if verification.passed else 1


def _cmd_serve(args, out) -> int:
    import json as _json
    import time as _time

    from repro.serving import PlanServer

    session = _session(args)  # builds the shared database + options
    statements = [_resolve_sql(q.strip()) for q in args.queries.split(",")]
    with PlanServer(
        session.database,
        options=session.options,
        workers=args.clients,
        cache=False if args.no_cache else None,
        deadline_s=args.deadline_s,
    ) as server:
        started = _time.perf_counter()
        futures = [
            server.submit(statements[i % len(statements)])
            for i in range(args.requests)
        ]
        tiers: dict[str, int] = {}
        for future in futures:
            result = future.result()
            info = getattr(result, "cache", None)
            tier = info.tier if info is not None else "uncached"
            tiers[tier] = tiers.get(tier, 0) + 1
        elapsed = _time.perf_counter() - started
        stats = server.stats()
    stats["elapsed_s"] = elapsed
    stats["qps"] = args.requests / elapsed if elapsed > 0 else 0.0
    stats["tiers"] = tiers
    if args.json:
        out.write(_json.dumps(stats, indent=2, sort_keys=True) + "\n")
        return 0
    out.write(
        f"served {stats['requests']} requests on {stats['workers']} workers "
        f"in {elapsed:.3f}s ({stats['qps']:,.1f} qps)\n"
    )
    out.write(
        f"latency: p50 {stats['latency_p50_ms']:.2f}ms  "
        f"p99 {stats['latency_p99_ms']:.2f}ms\n"
    )
    out.write(
        "tiers: "
        + "  ".join(f"{tier} {count}" for tier, count in sorted(tiers.items()))
        + "\n"
    )
    cache = stats.get("cache")
    if cache is not None:
        out.write(
            f"cache: {cache['plan.hits']} plan hits / "
            f"{cache['template.hits']} template hits / "
            f"{cache['plan.misses']} misses  "
            f"(evictions {cache['plan.evictions']}, "
            f"invalidations {cache['plan.invalidations']})\n"
        )
    return 0


_COMMANDS = {
    "count": _cmd_count,
    "optimize": _cmd_optimize,
    "trace": _cmd_trace,
    "accuracy": _cmd_accuracy,
    "metrics": _cmd_metrics,
    "serve": _cmd_serve,
    "distribution": _cmd_distribution,
    "explain": _cmd_explain,
    "unrank": _cmd_unrank,
    "sample": _cmd_sample,
    "execute": _cmd_execute,
    "validate": _cmd_validate,
    "table1": _cmd_table1,
    "figure4": _cmd_figure4,
    "participation": _cmd_participation,
    "diff": _cmd_diff,
    "corpus-build": _cmd_corpus_build,
    "corpus-verify": _cmd_corpus_verify,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    # Each error class maps to a distinct exit code so scripts can react
    # (retry with a longer deadline, shed load, ...) without parsing
    # stderr.  Subclasses are matched before their bases.
    try:
        return _COMMANDS[args.command](args, out)
    except Cancelled as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except TimeoutExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 5
    except ResourceExhausted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 6
    except BudgetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
