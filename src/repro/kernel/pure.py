"""Pure-Python reference forms of the kernel primitives.

These are the semantics the vectorized kernels are tested against
(``tests/kernel/``); the hot paths themselves fall back to their own
row-by-row loops (in :mod:`repro.memo.columnar`,
:mod:`repro.optimizer.bestplan`, :mod:`repro.planspace.implicit.counting`)
rather than calling through here, so the ``pure`` backend adds no
indirection on top of the historical scalar code.
"""

from __future__ import annotations

__all__ = [
    "first_occurrence_order",
    "prefix_interval",
    "range_min_pairs",
]


def first_occurrence_order(codes):
    """Distinct values in first-occurrence order, plus first indices."""
    seen: dict = {}
    for i, code in enumerate(codes):
        if code not in seen:
            seen[code] = i
    return list(seen), list(seen.values())


def prefix_interval(sorted_rows, k):
    """``hi_rank`` of one row in a byte-lex-sorted list: the first index
    after ``k`` whose row does not start with ``sorted_rows[k]``."""
    prefix = sorted_rows[k]
    for j in range(k + 1, len(sorted_rows)):
        if not sorted_rows[j].startswith(prefix):
            return j
    return len(sorted_rows)


def range_min_pairs(values, lo, hi):
    """Per-interval minima; ``inf`` for empty intervals."""
    inf = float("inf")
    return [
        min(values[a:b]) if a < b else inf for a, b in zip(lo, hi)
    ]
