"""Optional numba backend: jitted inner loops on top of the numpy forms.

Strictly opt-in (``REPRO_KERNEL=native``) and auto-detected: when numba
is not importable — it is not part of the container image — selection
degrades to the numpy backend and nothing here runs.  The jitted
surface is intentionally tiny: the one loop numpy cannot express flat
(the LCP monotonic-stack sweep of :func:`repro.kernel.vector.
prefix_intervals`); everything else is already memory-bound array code
where a jit buys nothing.
"""

from __future__ import annotations

__all__ = ["AVAILABLE", "prefix_intervals"]

try:  # pragma: no cover - numba is absent from the pinned image
    import numba

    AVAILABLE = True
except ImportError:
    numba = None
    AVAILABLE = False

_jitted = None


def _compile():  # pragma: no cover - requires numba
    global _jitted

    @numba.njit(cache=True)
    def _sweep(hi_rank, lcp, lengths):
        K = len(hi_rank)
        stack = []
        for k in range(1, K):
            boundary = lcp[k - 1]
            while stack and lengths[stack[-1]] > boundary:
                hi_rank[stack.pop()] = k
            if lengths[k - 1] > boundary:
                hi_rank[k - 1] = k
            else:
                stack.append(k - 1)
        return hi_rank

    _jitted = _sweep
    return _sweep


def prefix_intervals(np, sorted_mat, lengths, pad_width):  # pragma: no cover
    """Jitted twin of :func:`repro.kernel.vector.prefix_intervals`."""
    K = len(sorted_mat)
    hi_rank = np.full(K, K, np.int64)
    if K > 1:
        diff = sorted_mat[1:] != sorted_mat[:-1]
        lcp = np.where(diff.any(axis=1), diff.argmax(axis=1), pad_width)
        sweep = _jitted if _jitted is not None else _compile()
        sweep(hi_rank, lcp.astype(np.int64), np.asarray(lengths, np.int64))
    return hi_rank
