"""The pluggable vector-kernel layer.

Three hot loops in the exact path share the same inner machinery —
batched implementation (:mod:`repro.memo.columnar`), the layered
best-plan DP (:mod:`repro.optimizer.bestplan`), and the implicit
engine's turbo counting pass (:mod:`repro.planspace.implicit.turbo`):
row interning over uint64 word matrices, cut-bitmask decoding, byte-wise
lexicographic ranking with prefix intervals, first-occurrence ordering,
and segmented range minima.  This package is the single home for those
primitives (:mod:`.vector` for the numpy forms, :mod:`.pure` for the
reference Python forms) plus the backend selection every consumer asks
before choosing a code path.

Backends
--------

``pure``
    No numpy anywhere: the columnar build and the DP walk the arrays
    row by row (the reference semantics every vectorized path is tested
    against).
``numpy``
    The default whenever numpy imports: whole-bucket emission and
    whole-layer DP resolution as array expressions.
``native``
    Opt-in only (``REPRO_KERNEL=native``): numba-jitted inner loops
    layered *on top of* the numpy forms.  Auto-detected, never selected
    automatically, and silently degrades to ``numpy`` (then ``pure``)
    when numba is absent — the container image does not ship it.

Selection rules (first match wins):

1. ``REPRO_COLUMNAR_NUMPY=0`` — the historical kill-switch — forces
   ``pure`` regardless of ``REPRO_KERNEL``.
2. ``REPRO_KERNEL`` ∈ {``auto`` (or unset), ``pure``, ``numpy``,
   ``native``} picks the backend; unavailable choices degrade
   (``native`` → ``numpy`` → ``pure``) instead of erroring.

``selected_backend()`` is recomputed per call (tests flip the
environment mid-process); the numpy import itself is cached by Python.
"""

from __future__ import annotations

import os

__all__ = [
    "active_numpy",
    "native_available",
    "selected_backend",
]

_KNOWN = ("auto", "pure", "numpy", "native")


def _numpy_or_none():
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy ships in the image
        return None
    return numpy


def native_available() -> bool:
    """True when the optional numba backend can actually run."""
    from repro.kernel import native

    return native.AVAILABLE


def selected_backend() -> str:
    """The kernel backend this process would use right now."""
    if os.environ.get("REPRO_COLUMNAR_NUMPY", "").strip() == "0":
        return "pure"
    raw = os.environ.get("REPRO_KERNEL", "").strip().lower() or "auto"
    if raw not in _KNOWN:
        raw = "auto"
    if raw == "pure":
        return "pure"
    if _numpy_or_none() is None:
        return "pure"
    if raw == "native" and native_available():
        return "native"
    return "numpy"


def active_numpy():
    """numpy when the selected backend vectorizes, else ``None``.

    The single gate every vectorized path checks: ``pure`` (or a missing
    numpy) returns ``None`` and callers fall back to their row-by-row
    reference loops.
    """
    if selected_backend() == "pure":
        return None
    return _numpy_or_none()
