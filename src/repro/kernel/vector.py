"""numpy kernel primitives shared by implement, the DP, and turbo.

Every function takes the numpy module as its first argument (the
callers already hold it from :func:`repro.kernel.active_numpy`), so this
module imports cleanly even where numpy is absent.

The interning/ranking primitives originated in the implicit engine's
turbo counting pass and are exact by construction:

* :func:`intern_rows` verifies every row against its representative, so
  a mix-hash collision raises :class:`HashCollision` instead of
  corrupting the result;
* :func:`byte_words` + a big-endian word lexsort give byte-
  lexicographic row order, and 0-padded rows sort a key directly before
  its extensions, which is what makes :func:`prefix_intervals` a single
  LCP sweep.
"""

from __future__ import annotations

__all__ = [
    "HashCollision",
    "DECODE_CHUNK",
    "intern_rows",
    "byte_words",
    "lex_rank_rows",
    "lex_unique_rows",
    "prefix_intervals",
    "prefix_interval_ends",
    "decode_bit_rows",
    "union_words_by_mask",
    "first_occurrence_order",
    "range_min_pairs",
]

DECODE_CHUNK = 1 << 18

_MIX = 0x9E3779B97F4A7C15
_MIX2 = 0xFF51AFD7ED558CCD


class HashCollision(Exception):
    """A mix-hash collision (astronomically rare): retry unvectorized."""


def intern_rows(np, words):
    """Exact row interning: ``(ids, representative row indices)``.

    ``ids`` are arbitrary dense ints; representatives are the first
    occurrence of each distinct row.  Rows are compared to their
    representative afterwards, so a hash collision cannot corrupt the
    result — it raises instead.
    """
    n, w = words.shape

    def avalanche(x):
        # splitmix64 finalizer: full bit diffusion per word, so sparse
        # single-bit cut masks cannot cancel across the combine step
        x = x ^ (x >> np.uint64(30))
        x = x * np.uint64(0xBF58476D1CE4E5B9)
        x = x ^ (x >> np.uint64(27))
        x = x * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))

    h = np.zeros(n, np.uint64)
    for i in range(w):
        seed = np.uint64(((i + 1) * _MIX2) & 0xFFFFFFFFFFFFFFFF)
        h = (h * np.uint64(_MIX)) ^ avalanche(words[:, i] + seed)
    _uniq, ids = np.unique(h, return_inverse=True)
    ids = ids.reshape(-1)
    count = len(_uniq)
    rep = np.empty(count, np.int64)
    rep[ids[::-1]] = np.arange(n - 1, -1, -1)
    if not (words == words[rep[ids]]).all():
        raise HashCollision
    return ids, rep


def byte_words(np, mat):
    """View a 0-padded (n, width) uint8 matrix as big-endian uint64 words
    — numeric word order equals byte-lexicographic row order."""
    width = mat.shape[1]
    padded_width = (width + 7) // 8 * 8
    if padded_width != width:
        out = np.zeros((mat.shape[0], padded_width), np.uint8)
        out[:, :width] = mat
        mat = out
    return np.ascontiguousarray(mat).view(">u8").astype(np.uint64)


def lex_rank_rows(np, mat):
    """Byte-lexicographic row ranks of a 0-padded uint8 matrix:
    ``(order, rank)`` with ``mat[order]`` sorted and ``rank[i]`` the
    position of row ``i`` in that order."""
    words = byte_words(np, mat)
    order = np.lexsort(words.T[::-1])
    rank = np.empty(len(mat), np.int64)
    rank[order] = np.arange(len(mat))
    return order, rank


def prefix_intervals(np, sorted_mat, lengths, pad_width):
    """``hi_rank`` over byte-lex-sorted 0-padded rows: ``hi_rank[k]`` is
    the first rank after ``k`` whose row does not extend row ``k`` — so
    the extensions of row ``k`` (itself included) are exactly the
    contiguous rank interval ``[k, hi_rank[k])``.  One LCP sweep plus a
    monotonic stack."""
    K = len(sorted_mat)
    hi_rank = np.full(K, K, np.int64)
    if K > 1:
        diff = sorted_mat[1:] != sorted_mat[:-1]
        lcp = np.where(diff.any(axis=1), diff.argmax(axis=1), pad_width)
        lens = np.asarray(lengths, np.int64)
        # hi_rank[k] = 1 + (first boundary i >= k with lcp[i] < len[k]),
        # or K when the extension run reaches the end of the table.  Row
        # lengths are small (<= pad_width), so resolve one length
        # threshold at a time: the break positions for threshold T are
        # exactly lcp < T, and one searchsorted per threshold hands every
        # row of that length its first break at or after it.
        for T in np.unique(lens[:-1]):
            if T <= 0:
                continue  # empty prefix: extended to the end of the table
            sel = np.flatnonzero(lens[:-1] == T)
            drops = np.flatnonzero(lcp < T)
            pos = np.searchsorted(drops, sel)
            hit = pos < len(drops)
            out = np.full(len(sel), K, np.int64)
            out[hit] = drops[pos[hit]] + 1
            hi_rank[sel] = out
        # the last row trivially ends at K (already the fill value)
    return hi_rank


def lex_unique_rows(np, mat):
    """Distinct rows of a 0-padded uint8 matrix in byte-lex order, plus
    each input row's rank in that order: ``(distinct_sorted, rank)``
    with ``distinct_sorted`` the deduplicated sorted matrix and
    ``rank[i]`` the position of row ``i``'s value in it.

    One lexsort over all rows — exact by construction (no hashing), and
    cheaper than interning to distinct rows first and sorting those:
    the duplicate-collapse rides the same sort.
    """
    n = len(mat)
    if not n:
        return mat, np.zeros(0, np.int64)
    words = byte_words(np, mat)
    order = np.lexsort(words.T[::-1])
    sw = words[order]
    is_new = np.empty(n, dtype=bool)
    is_new[0] = True
    if n > 1:
        is_new[1:] = (sw[1:] != sw[:-1]).any(axis=1)
    rank_sorted = np.cumsum(is_new) - 1
    rank = np.empty(n, np.int64)
    rank[order] = rank_sorted
    return mat[order[is_new]], rank


def prefix_interval_ends(np, sorted_mat, lengths, pad_width, ranks):
    """:func:`prefix_intervals` evaluated at selected ranks only.

    The DP needs interval ends for the *required* kids — a small
    multiset of ranks — not for every row of the kid table.  For one
    prefix length ``T`` the break boundaries are exactly the adjacent
    row pairs whose first ``T`` bytes differ, which a masked big-endian
    word compare answers without materializing the full LCP column:
    per distinct required length this is a couple of whole-array uint64
    ops instead of a ``(K, width)`` byte sweep.
    """
    out = np.full(len(ranks), len(sorted_mat), np.int64)
    K = len(sorted_mat)
    if K <= 1 or not len(ranks):
        return out
    words = byte_words(np, sorted_mat)
    prev = words[:-1]
    nxt = words[1:]
    rlen = np.asarray(lengths, np.int64)[ranks]
    for T in np.unique(rlen):
        T = int(T)
        if T <= 0:
            continue  # empty prefix: extended to the end of the table
        sel = np.flatnonzero(rlen == T)
        neq = np.zeros(K - 1, dtype=bool)
        for wi in range((T + 7) // 8):
            tail = T - wi * 8
            if tail >= 8:
                neq |= nxt[:, wi] != prev[:, wi]
            else:
                shift = np.uint64(64 - 8 * tail)
                neq |= (nxt[:, wi] >> shift) != (prev[:, wi] >> shift)
        drops = np.flatnonzero(neq)
        pos = np.searchsorted(drops, ranks[sel])
        hit = pos < len(drops)
        vals = np.full(len(sel), K, np.int64)
        vals[hit] = drops[pos[hit]] + 1
        out[sel] = vals
    return out


def decode_bit_rows(
    np, bit_rows, nbits, left_lut, right_lut, chunk_size=DECODE_CHUNK, on_chunk=None
):
    """Decode packed little-endian bit rows into padded byte matrices.

    ``bit_rows`` is an (n, W) uint64 matrix of bitmasks; each set bit
    ``p`` contributes ``left_lut[p]`` / ``right_lut[p]`` to that row's
    left/right output, in ascending bit order.  Returns
    ``(left_chunks, right_chunks, chunk_maxlens)`` — 0-padded uint8
    matrices per decode chunk (pad widths differ per chunk; callers
    re-pad to a common width).  ``on_chunk`` is polled once per chunk
    for budget checkpoints.
    """
    left_chunks, right_chunks, chunk_maxlens = [], [], []
    for lo in range(0, len(bit_rows), chunk_size):
        if on_chunk is not None:
            on_chunk()
        chunk = bit_rows[lo : lo + chunk_size]
        if nbits:
            # Unpack only the bytes that can hold set bits, and take
            # flatnonzero over the contiguous result — far faster than
            # 2-D nonzero over a strided column slice.  Bits past
            # ``nbits`` inside the last byte are guaranteed zero (masks
            # fit in ``nbits``).
            nbytes = (nbits + 7) // 8
            bits = np.unpackbits(
                np.ascontiguousarray(chunk.view(np.uint8)[:, :nbytes]),
                axis=1,
                bitorder="little",
            )
        else:
            bits = np.zeros((len(chunk), 0), np.uint8)
        ncols = bits.shape[1] if nbits else 1
        flat = np.flatnonzero(bits)
        if len(chunk) * ncols < 1 << 32:
            # Chunks fit 32-bit flat indices (chunk_size * ncols stays
            # far under 2**32), and uint32 division/scatter indexing run
            # ~2x faster than int64.
            flat = flat.astype(np.uint32)
            rows = flat // np.uint32(ncols)
            poss = flat - rows * np.uint32(ncols)
        else:  # pragma: no cover - needs a >4G-bit chunk
            rows = flat // ncols
            poss = flat - rows * ncols
        lengths = np.bincount(rows, minlength=len(chunk))
        maxlen = max(int(lengths.max()) if lengths.size else 0, 1)
        starts = np.zeros(len(chunk), np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        offs = (np.arange(len(rows)) - np.repeat(starts, lengths)).astype(
            rows.dtype
        )
        idx = rows * rows.dtype.type(maxlen) + offs
        lmat = np.zeros(len(chunk) * maxlen, np.uint8)
        rmat = np.zeros(len(chunk) * maxlen, np.uint8)
        lmat[idx] = left_lut[poss]
        rmat[idx] = right_lut[poss]
        left_chunks.append(lmat.reshape(len(chunk), maxlen))
        right_chunks.append(rmat.reshape(len(chunk), maxlen))
        chunk_maxlens.append(maxlen)
    return left_chunks, right_chunks, chunk_maxlens


def union_words_by_mask(np, bit_words, masks, nbits):
    """Per-mask unions of per-bit word rows: ``out[i] = OR of
    bit_words[b] over set bits b of masks[i]``.  One vectorized OR sweep
    per universe bit (``nbits`` ≤ 24 everywhere the columnar path
    runs)."""
    W = bit_words.shape[1] if nbits else 1
    out = np.zeros((len(masks), W), np.uint64)
    for i in range(nbits):
        sel = (masks >> i) & 1 == 1
        if sel.any():
            out[sel] |= bit_words[i]
    return out


def first_occurrence_order(np, codes):
    """Distinct values of ``codes`` in first-occurrence order, plus the
    index of each first occurrence."""
    uniq, first = np.unique(codes, return_index=True)
    order = np.argsort(first, kind="stable")
    return uniq[order], first[order]


def range_min_pairs(np, values, lo, hi):
    """Per-interval minima over a 1-D float array: ``out[k] =
    min(values[lo[k]:hi[k]])``, ``+inf`` for empty intervals.  The
    classic interleaved-``reduceat`` trick: only the even slots of the
    boundary array are segment results."""
    inf = float("inf")
    out = np.full(len(lo), inf, dtype=np.float64)
    ok = lo < hi
    if not ok.any():
        return out
    vals = np.append(values, inf)  # sentinel keeps reduceat in range
    sel_lo = lo[ok]
    sel_hi = hi[ok]
    bounds = np.empty(2 * len(sel_lo), np.int64)
    bounds[0::2] = sel_lo
    bounds[1::2] = sel_hi
    out[ok] = np.minimum.reduceat(vals, bounds)[0::2]
    return out
