"""repro — counting, enumerating, and sampling of execution plans in a
cost-based query optimizer.

A full reproduction of F. Waas & C. A. Galindo-Legaria, *Counting,
Enumerating, and Sampling of Execution Plans in a Cost-Based Query
Optimizer* (SIGMOD 2000), including every substrate the paper relies on:
a Cascades/Volcano-style MEMO optimizer over a TPC-H catalog, a SQL front
end with the ``OPTION (USEPLAN n)`` extension, an execution engine, the
plan-validation harness of the paper's Section 4, and the cost-
distribution experiments of Section 5.

Quickstart::

    from repro import Session

    session = Session.tpch()
    space = session.plan_space("SELECT ... FROM ... WHERE ...")
    space.count()               # exact number of plans, arbitrary precision
    plan = space.unrank(8)      # plan number 8
    space.rank(plan)            # 8 again — the mapping is a bijection
    space.sample(10_000)        # uniform random plans

    session.execute("SELECT ... OPTION (USEPLAN 8)")   # run plan 8
"""

from repro.api import ExecutedQuery, Session
from repro.catalog.catalog import Catalog
from repro.catalog.tpch import tpch_catalog
from repro.errors import ReproError
from repro.executor.executor import PlanExecutor, QueryResult, execute_plan
from repro.memo.memo import Memo
from repro.optimizer.optimizer import (
    ExplorationStrategy,
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
)
from repro.optimizer.explain import explain_plan
from repro.optimizer.plan import PlanNode
from repro.planspace.space import PlanSpace
from repro.sampledopt import SampledOptimizationResult, SampledOptimizer
from repro.storage.database import Database
from repro.storage.datagen import generate_tpch
from repro.testing.harness import PlanValidator, ValidationReport

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "Database",
    "ExecutedQuery",
    "ExplorationStrategy",
    "Memo",
    "OptimizationResult",
    "Optimizer",
    "OptimizerOptions",
    "PlanExecutor",
    "PlanNode",
    "PlanSpace",
    "PlanValidator",
    "QueryResult",
    "ReproError",
    "SampledOptimizationResult",
    "SampledOptimizer",
    "Session",
    "ValidationReport",
    "execute_plan",
    "explain_plan",
    "generate_tpch",
    "tpch_catalog",
    "__version__",
]
