"""Literal-normalizing query fingerprints and cache-identity keys.

The plan cache's unit of reuse is the *query template*: the statement
with every constant rewritten to a parameter marker, so ``WHERE x = 5``
and ``WHERE x = 7`` share one template.  Fingerprinting works on the
token stream (:mod:`repro.sql.lexer`), not the text, so whitespace,
comments, keyword case and literal spelling (``0.50`` vs ``0.5``) never
split templates — while identifier structure, operator choice and
clause shape always do.

A template alone does not identify a cached *plan*: range selectivities
interpolate literal values against column ``[lo, hi]`` bounds, and the
chosen plan's predicates embed the literals, so the final-plan cache
tier keys on ``(template, parameter vector)`` and only the per-template
*artifact* tier (enumeration universe, logical splits, edge catalog —
all literal-free) is shared across parameter values.  See
:mod:`repro.serving.cache`.

Cache identity also includes what the optimizer would consult beyond
the text: :func:`catalog_signature` digests the statistics snapshot a
plan was costed under, and :func:`options_signature` digests the rule /
implementation / cost-parameter configuration that shaped the search
space.  Either changing yields a fresh key, never a stale hit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.sql.lexer import Token, TokenType, tokenize

__all__ = [
    "QueryFingerprint",
    "catalog_signature",
    "fingerprint_sql",
    "options_signature",
]

#: token types rewritten to parameter markers
_LITERALS = (TokenType.INTEGER, TokenType.FLOAT, TokenType.STRING)


@dataclass(frozen=True)
class QueryFingerprint:
    """One statement, split into its template and parameter vector.

    ``template`` is the normalized statement text (keywords uppercase,
    single-spaced, literals replaced by ``?``); ``params`` carries the
    extracted ``(kind, value)`` pairs in occurrence order — the part of
    the cache key that distinguishes literal variants of one template.
    """

    template: str
    params: tuple[tuple[str, str], ...]

    @property
    def digest(self) -> str:
        """A short stable hex digest of the template (display/keys)."""
        return hashlib.sha256(self.template.encode()).hexdigest()[:16]


def _normalize(value: str, kind: TokenType) -> str:
    """Canonical parameter spelling: numerics via float folding so
    ``0.50`` and ``0.5`` compare equal, strings verbatim."""
    if kind is TokenType.FLOAT:
        return repr(float(value))
    return value


def fingerprint_sql(sql: str) -> QueryFingerprint:
    """Fingerprint one statement.

    Literals inside an ``OPTION (USEPLAN n)`` clause are *not*
    parameterized: the plan number is an instruction to the executor,
    not a predicate constant, and folding ``USEPLAN 3`` into ``USEPLAN
    8``'s template would serve the wrong forced plan.
    """
    parts: list[str] = []
    params: list[tuple[str, str]] = []
    previous: Token | None = None
    for token in tokenize(sql):
        if token.type is TokenType.EOF:
            break
        if token.type in _LITERALS and not (
            previous is not None and previous.is_keyword("USEPLAN")
        ):
            parts.append("?")
            params.append((token.type.value, _normalize(token.value, token.type)))
        elif token.type is TokenType.STRING:
            # USEPLAN never takes strings; kept for symmetry/safety.
            parts.append("'" + token.value.replace("'", "''") + "'")
        else:
            parts.append(token.value)
        previous = token
    return QueryFingerprint(template=" ".join(parts), params=tuple(params))


# ----------------------------------------------------------------------
# configuration / statistics identity
# ----------------------------------------------------------------------
def catalog_signature(catalog) -> str:
    """Digest of the statistics snapshot plans are costed under.

    Covers, per table in name order: the row count, every column's
    ``(distinct, lo, hi, null_fraction)``, and the index definitions —
    exactly the inputs the cardinality estimator and the cost model
    read.  Two catalogs with equal signatures cost every plan
    identically, so cached plans transfer between them.
    """
    h = hashlib.sha256()
    for key in sorted(catalog.tables):
        schema = catalog.tables[key]
        stats = catalog.stats[key]
        columns = tuple((c.name, c.type.value, c.nullable) for c in schema.columns)
        h.update(repr((key, columns, stats.row_count)).encode())
        for name in sorted(stats.columns):
            col = stats.columns[name]
            h.update(
                repr((name, col.distinct, col.lo, col.hi, col.null_fraction)).encode()
            )
        for index in schema.indexes:
            h.update(
                repr((index.name, index.key, index.unique, index.clustered)).encode()
            )
    return h.hexdigest()[:16]


def options_signature(options, prune_factor=None) -> str:
    """Digest of the optimizer configuration shaping the search space.

    ``OptimizerOptions`` is a frozen dataclass of frozen dataclasses
    (rules, implementation, cost parameters) and enums, so its ``repr``
    is a complete, deterministic spelling of every knob.  The effective
    ``prune_factor`` (a per-call override of ``pruning_factor``) is
    folded in alongside.
    """
    h = hashlib.sha256()
    h.update(repr(options).encode())
    h.update(repr(prune_factor).encode())
    return h.hexdigest()[:16]
