"""Plan serving: fingerprint cache, template artifacts, concurrent front end.

See :mod:`repro.serving.fingerprint` (literal-normalizing cache
identity), :mod:`repro.serving.cache` (the two-tier plan/template
cache) and :mod:`repro.serving.server` (the thread-pool front end) —
and ``README.md`` in this directory for the contracts tying them
together.
"""

from repro.serving.cache import CacheInfo, CacheKey, PlanCache, TemplateArtifacts
from repro.serving.fingerprint import (
    QueryFingerprint,
    catalog_signature,
    fingerprint_sql,
    options_signature,
)
from repro.serving.server import PlanServer

__all__ = [
    "CacheInfo",
    "CacheKey",
    "PlanCache",
    "PlanServer",
    "QueryFingerprint",
    "TemplateArtifacts",
    "catalog_signature",
    "fingerprint_sql",
    "options_signature",
]
