"""The concurrent plan-serving front end.

A :class:`PlanServer` is what the cache exists for: many clients firing
statements at one database, most of them literal variants of a few
templates.  Requests run on a thread pool; every worker thread owns a
private :class:`~repro.api.Session` (optimizer state is per-request,
sessions are not thread-safe) while all of them share the read-only
:class:`~repro.storage.database.Database`, one thread-safe
:class:`~repro.serving.cache.PlanCache` and one cardinality ledger — so
a plan cached by any worker serves every worker, and a feedback epoch
bump invalidates for every worker at once.

Every request routes through ``Session.optimize(deadline_s=...)``: the
server's deadline rides the resilience ladder, so an overloaded or
pathological request degrades (``result.resilience``) instead of
stalling the pool, and the cache tag (``result.cache``) reports how much
work the request actually did.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor

from repro.obs.feedback import CardinalityLedger
from repro.serving.cache import PlanCache

__all__ = ["PlanServer"]


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


class PlanServer:
    """Thread-pool front end serving plans out of a shared cache.

    ``cache`` is a :class:`PlanCache` to share (e.g. across servers),
    ``None`` for a private default-sized cache, or ``False`` to serve
    uncached (every request optimizes from scratch — the cold baseline
    the benchmark compares against).  ``deadline_s`` is the default
    per-request optimization deadline; individual requests may override
    it.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        database,
        options=None,
        workers: int = 8,
        cache=None,
        deadline_s: float | None = None,
        on_budget: str = "degrade",
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.database = database
        self.options = options
        self.workers = workers
        self.cache = PlanCache() if cache is None else (cache or None)
        self.deadline_s = deadline_s
        self.on_budget = on_budget
        #: one ledger shared by every worker session: feedback observed
        #: through any of them re-costs (and epoch-invalidates) for all
        self.ledger = CardinalityLedger()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sessions: list = []
        self._requests = 0
        self._errors = 0
        self._latencies: deque = deque(maxlen=4096)
        self._closed = False

    # ------------------------------------------------------------------
    def _session(self):
        """This worker thread's private session (created on first use)."""
        session = getattr(self._local, "session", None)
        if session is None:
            from repro.api import Session

            session = Session(
                self.database, options=self.options, plan_cache=self.cache
            )
            session.ledger = self.ledger
            with self._lock:
                self._sessions.append(session)
            self._local.session = session
        return session

    def _serve(self, sql: str, deadline_s, trace: bool, feedback, kwargs):
        start = time.perf_counter()
        try:
            result = self._session().optimize(
                sql,
                deadline_s=deadline_s,
                on_budget=self.on_budget,
                trace=trace,
                feedback=feedback,
                **kwargs,
            )
        except Exception:
            with self._lock:
                self._requests += 1
                self._errors += 1
            raise
        elapsed = time.perf_counter() - start
        with self._lock:
            self._requests += 1
            self._latencies.append(elapsed)
        return result

    # ------------------------------------------------------------------
    def submit(
        self,
        sql: str,
        deadline_s: float | None = None,
        trace: bool = False,
        feedback=None,
        **kwargs,
    ) -> Future:
        """Enqueue one statement; the Future resolves to the
        optimization result (``result.cache`` / ``result.resilience``
        report how it was served)."""
        if self._closed:
            raise RuntimeError("PlanServer is closed")
        effective = deadline_s if deadline_s is not None else self.deadline_s
        return self._pool.submit(
            self._serve, sql, effective, trace, feedback, kwargs
        )

    def optimize(self, sql: str, **kwargs):
        """Serve one statement synchronously (convenience)."""
        return self.submit(sql, **kwargs).result()

    def map(self, statements, **kwargs) -> list:
        """Serve a batch concurrently; results in submission order."""
        futures = [self.submit(sql, **kwargs) for sql in statements]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def observe_execution(self, stats, memo, universe) -> int:
        """Feed executor feedback into the shared ledger, then drop any
        cached plan the resulting stats-epoch move just invalidated.
        Returns the number of plan entries invalidated."""
        self.ledger.record_execution(stats, memo, universe)
        return self.invalidate_stale()

    def invalidate_stale(self) -> int:
        """Eagerly evict feedback-keyed plans from superseded epochs."""
        if self.cache is None:
            return 0
        return self.cache.invalidate_epoch(self.ledger.stats_epoch)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Request counters, latency percentiles, cache counters."""
        with self._lock:
            latencies = sorted(self._latencies)
            data = {
                "workers": self.workers,
                "requests": self._requests,
                "errors": self._errors,
                "sessions": len(self._sessions),
            }
        data["latency_p50_ms"] = _percentile(latencies, 0.50) * 1000.0
        data["latency_p99_ms"] = _percentile(latencies, 0.99) * 1000.0
        if self.cache is not None:
            data["cache"] = self.cache.stats()
        return data

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
