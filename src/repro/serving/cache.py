"""The two-tier plan cache: final plans and per-template artifacts.

**Plan tier** — the finished :class:`~repro.optimizer.optimizer.
OptimizationResult` of one exact optimization, keyed by ``(template,
parameter vector, catalog signature, config signature, feedback?)``.
The parameter vector is part of the key on purpose: range selectivities
interpolate literal values against column bounds and the chosen plan's
predicates embed the literals, so serving ``x = 5``'s plan for ``x =
7`` would be both wrong and non-byte-identical.  There is no parameter
sniffing — a different literal vector is a plan-tier miss.

**Template tier** — the reusable, *literal-free* artifacts of one query
template: the explored logical store's split columns (shared read-only
and replayed onto fresh memos by
:func:`repro.memo.columnar.replay_logical_store`), the oriented-equality
:class:`~repro.planspace.implicit.edges.EdgeCatalog` (cloned per use —
its memo caches are mutable), and the implicit plan-space count.  All
are functions of the join graph alone, so even a cost-relevant miss (new
literals, a moved stats epoch) skips exploration entirely.

**Invalidation** — feedback-costed plan entries record the ledger's
``stats_epoch`` at admission.  :meth:`CardinalityLedger.observe` bumps
the epoch when an observation crosses the q-error threshold
(:data:`repro.obs.feedback.EPOCH_Q_THRESHOLD`), and a lookup under a
moved epoch explicitly evicts the stale entry (counted as an
invalidation) and falls back to the template tier, so the plan is
re-costed under the new bound stats instead of served stale.
:meth:`PlanCache.invalidate_epoch` does the same eagerly for every
feedback-keyed entry after a ledger update.

Both tiers are bounded LRU (``OrderedDict`` under one re-entrant lock —
the thread-pool front end shares a single cache across sessions), with
hit/miss/eviction/invalidation counters mirrored into any
:class:`repro.obs.Metrics` registry the caller passes per operation.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["CacheInfo", "CacheKey", "PlanCache", "TemplateArtifacts"]


@dataclass(frozen=True)
class CacheKey:
    """Template-level cache identity: normalized text + environment."""

    template: str  # literal-normalized statement (fingerprint_sql)
    catalog: str  # statistics snapshot digest (catalog_signature)
    config: str  # optimizer configuration digest (options_signature)


@dataclass(frozen=True)
class CacheInfo:
    """How one ``Session.optimize`` call interacted with the plan cache.

    Attached to ``result.cache`` whenever the session has a cache.
    ``tier`` is ``"plan"`` (the final plan was served from cache —
    no optimization ran), ``"template"`` (plan-tier miss, but cached
    per-template artifacts skipped exploration), or ``"miss"`` (cold:
    the full pipeline ran, and the cache was populated).
    """

    tier: str
    fingerprint: str  # short template digest (QueryFingerprint.digest)
    template_age_s: float | None = None  # age of the reused entry
    hits: int = 0  # serve count of the plan entry (plan tier only)

    def describe(self) -> str:
        age = (
            f", age {self.template_age_s:.3f}s"
            if self.template_age_s is not None
            else ""
        )
        return f"cache: {self.tier} [{self.fingerprint}]{age}"


@dataclass
class _LogicalTemplate:
    """Detached snapshot of a completed ``ColumnarLogicalStore`` — the
    duck-typed argument :func:`repro.memo.columnar.replay_logical_store`
    consumes.  Holds only arrays/dicts of ints, never the source memo,
    so caching a template does not pin a multi-hundred-MB cold run."""

    universe_order: tuple[str, ...]
    allow_cross_products: bool
    subset_masks: list[int]
    sl: object  # array('i'), shared read-only
    sr: object
    range_by_gid: dict[int, tuple[int, int]]
    initial_by_gid: dict[int, tuple[int, int]]
    gid_by_mask: dict[int, int]


@dataclass
class TemplateArtifacts:
    """The literal-free reusables of one query template."""

    logical: _LogicalTemplate | None = None
    edges: object | None = None  # EdgeCatalog snapshot (clone per use)
    implicit_count: int | None = None
    created_s: float = field(default_factory=time.monotonic)
    replays: int = 0

    @classmethod
    def capture(cls, result) -> "TemplateArtifacts | None":
        """Snapshot the reusable artifacts off a finished exact result.

        Returns ``None`` when the run left nothing reusable (object-path
        exploration has no columnar logical store to replay).
        """
        memo = getattr(result, "memo", None)
        logical_store = getattr(memo, "columnar_logical", None)
        if (
            memo is None
            or logical_store is None
            or not getattr(logical_store, "complete", False)
            or memo.universe is None
        ):
            return None
        logical = _LogicalTemplate(
            universe_order=tuple(memo.universe.order),
            allow_cross_products=logical_store.allow_cross_products,
            subset_masks=logical_store.subset_masks,
            sl=logical_store.sl,
            sr=logical_store.sr,
            range_by_gid=logical_store._range_by_gid,
            initial_by_gid=logical_store.initial_by_gid,
            gid_by_mask=logical_store.gid_by_mask,
        )
        physical = getattr(memo, "columnar", None)
        edges = getattr(physical, "edges", None)
        if edges is not None:
            # Snapshot by clone: the live store keeps interning columns
            # through this catalog; the cached copy must stay frozen.
            edges = edges.clone()
        return cls(logical=logical, edges=edges)

    def take_edges(self, graph):
        """A private edge-catalog clone bound to ``graph`` (or ``None``
        when no catalog was captured or the universe drifted)."""
        if self.edges is None:
            return None
        from repro.errors import PlanSpaceError

        try:
            return self.edges.clone(graph)
        except PlanSpaceError:
            return None

    def age_s(self) -> float:
        return time.monotonic() - self.created_s


@dataclass
class _PlanEntry:
    result: object  # OptimizationResult (trace/cache stripped)
    epoch: int | None  # ledger stats_epoch at admission (feedback only)
    created_s: float = field(default_factory=time.monotonic)
    hits: int = 0

    def age_s(self) -> float:
        return time.monotonic() - self.created_s


class PlanCache:
    """Bounded, thread-safe, two-tier LRU plan cache."""

    def __init__(self, max_plans: int = 128, max_templates: int = 32):
        if max_plans < 1 or max_templates < 1:
            raise ValueError("cache capacities must be at least 1")
        self.max_plans = max_plans
        self.max_templates = max_templates
        self._lock = threading.RLock()
        self._plans: OrderedDict[tuple, _PlanEntry] = OrderedDict()
        self._templates: OrderedDict[CacheKey, TemplateArtifacts] = OrderedDict()
        self._counters = {
            "plan.hits": 0,
            "plan.misses": 0,
            "plan.evictions": 0,
            "plan.invalidations": 0,
            "template.hits": 0,
            "template.misses": 0,
            "template.evictions": 0,
        }

    # ------------------------------------------------------------------
    def _count(self, name: str, metrics=None) -> None:
        self._counters[name] += 1
        if metrics is not None:
            metrics.inc("plancache." + name)

    @staticmethod
    def _plan_key(key: CacheKey, params, feedback: bool) -> tuple:
        return (key, params, feedback)

    # ------------------------------------------------------------------
    # plan tier
    # ------------------------------------------------------------------
    def lookup_plan(
        self, key: CacheKey, params, feedback: bool, epoch=None, metrics=None
    ) -> _PlanEntry | None:
        """The cached final plan for this exact request, or ``None``.

        A hit under a moved stats epoch (feedback-keyed entries only) is
        *invalidated*, not served: the entry is evicted, the
        invalidation counted, and the caller re-costs via the template
        tier.
        """
        plan_key = self._plan_key(key, params, feedback)
        with self._lock:
            entry = self._plans.get(plan_key)
            if entry is None:
                self._count("plan.misses", metrics)
                return None
            if feedback and entry.epoch != epoch:
                del self._plans[plan_key]
                self._count("plan.invalidations", metrics)
                self._count("plan.misses", metrics)
                return None
            self._plans.move_to_end(plan_key)
            entry.hits += 1
            self._count("plan.hits", metrics)
            return entry

    def store_plan(
        self, key: CacheKey, params, result, feedback: bool, epoch=None
    ) -> _PlanEntry:
        plan_key = self._plan_key(key, params, feedback)
        entry = _PlanEntry(result=result, epoch=epoch if feedback else None)
        with self._lock:
            self._plans[plan_key] = entry
            self._plans.move_to_end(plan_key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self._counters["plan.evictions"] += 1
        return entry

    def invalidate_epoch(self, epoch: int, metrics=None) -> int:
        """Eagerly drop every feedback-keyed plan cached under a
        different stats epoch (the ledger moved past the q-error
        threshold).  Returns the number of entries invalidated."""
        dropped = 0
        with self._lock:
            for plan_key in list(self._plans):
                _key, _params, is_feedback = plan_key
                if is_feedback and self._plans[plan_key].epoch != epoch:
                    del self._plans[plan_key]
                    self._count("plan.invalidations", metrics)
                    dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # template tier
    # ------------------------------------------------------------------
    def lookup_template(
        self, key: CacheKey, metrics=None
    ) -> TemplateArtifacts | None:
        with self._lock:
            artifacts = self._templates.get(key)
            if artifacts is None:
                self._count("template.misses", metrics)
                return None
            self._templates.move_to_end(key)
            artifacts.replays += 1
            self._count("template.hits", metrics)
            return artifacts

    def store_template(self, key: CacheKey, artifacts: TemplateArtifacts) -> None:
        with self._lock:
            existing = self._templates.get(key)
            if existing is not None:
                # Fill gaps instead of resetting age/replay history.
                if existing.logical is None:
                    existing.logical = artifacts.logical
                if existing.edges is None:
                    existing.edges = artifacts.edges
                if existing.implicit_count is None:
                    existing.implicit_count = artifacts.implicit_count
                self._templates.move_to_end(key)
                return
            self._templates[key] = artifacts
            while len(self._templates) > self.max_templates:
                self._templates.popitem(last=False)
                self._counters["template.evictions"] += 1

    # ------------------------------------------------------------------
    # implicit-count convenience (template tier)
    # ------------------------------------------------------------------
    def implicit_count(self, key: CacheKey, metrics=None) -> int | None:
        """The cached implicit plan-space count for a template."""
        with self._lock:
            artifacts = self._templates.get(key)
            count = None if artifacts is None else artifacts.implicit_count
            if count is None:
                self._count("template.misses", metrics)
                return None
            self._templates.move_to_end(key)
            self._count("template.hits", metrics)
            return count

    def store_implicit_count(self, key: CacheKey, count: int) -> None:
        with self._lock:
            artifacts = self._templates.get(key)
            if artifacts is None:
                self.store_template(key, TemplateArtifacts(implicit_count=count))
            else:
                artifacts.implicit_count = count
                self._templates.move_to_end(key)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready counters plus current tier sizes."""
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["plan.size"] = len(self._plans)
            snapshot["template.size"] = len(self._templates)
            snapshot["plan.capacity"] = self.max_plans
            snapshot["template.capacity"] = self.max_templates
        return snapshot

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._templates.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)
