"""Plan-space analysis: what do the sampled plans look like?

Section 4 of the paper argues that enumerating/sampling "helps check and
analyze optimizer principles".  This module provides the analyses we
found most useful when studying the spaces: which operators appear how
often in a uniform sample, the join-tree shape mix (left-deep vs bushy),
and per-operator usage frequencies (is some implementation dead?).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.algebra.physical import (
    HashJoin,
    IndexNestedLoopJoin,
    MergeJoin,
    NestedLoopJoin,
    PhysicalOperator,
)
from repro.optimizer.plan import PlanNode

__all__ = [
    "classify_join_shape",
    "operator_mix",
    "PlanSampleAnalysis",
    "analyze_plans",
]

_JOIN_TYPES = (HashJoin, MergeJoin, NestedLoopJoin, IndexNestedLoopJoin)


def _is_join(op: PhysicalOperator) -> bool:
    return isinstance(op, _JOIN_TYPES)


def _contains_join(plan: PlanNode) -> bool:
    return any(_is_join(node.op) for node in plan.iter_nodes())


def classify_join_shape(plan: PlanNode) -> str:
    """The join-tree shape of a plan.

    * ``left-deep`` — every binary join's right input is join-free;
    * ``right-deep`` — every binary join's left input is join-free;
    * ``linear``    — every join has at least one join-free input, mixing
      left and right (a zig-zag tree);
    * ``bushy``     — some join joins two join results;
    * ``no-join``   — the plan has at most one base relation.

    Index-lookup joins are unary (the inner side is owned by the
    operator) and count as a join with a join-free right input.
    """
    joins = [node for node in plan.iter_nodes() if _is_join(node.op)]
    if len(joins) <= 1:
        return "no-join" if not joins else "left-deep"
    all_left = True
    all_right = True
    for node in joins:
        if isinstance(node.op, IndexNestedLoopJoin):
            # outer = children[0], inner is embedded (join-free).
            left_has = _contains_join(node.children[0])
            right_has = False
        else:
            left_has = _contains_join(node.children[0])
            right_has = _contains_join(node.children[1])
        if left_has and right_has:
            return "bushy"
        if right_has:
            all_left = False
        if left_has:
            all_right = False
    if all_left:
        return "left-deep"
    if all_right:
        return "right-deep"
    return "linear"


def operator_mix(plans: list[PlanNode]) -> Counter:
    """Total operator occurrences across ``plans`` by operator name."""
    counts: Counter = Counter()
    for plan in plans:
        for node in plan.iter_nodes():
            counts[node.op.name] += 1
    return counts


@dataclass
class PlanSampleAnalysis:
    """Aggregate statistics over a sample of plans."""

    sample_size: int
    shape_counts: Counter = field(default_factory=Counter)
    operator_counts: Counter = field(default_factory=Counter)
    plans_containing: Counter = field(default_factory=Counter)
    mean_plan_size: float = 0.0
    mean_plan_depth: float = 0.0

    def shape_fraction(self, shape: str) -> float:
        if not self.sample_size:
            return 0.0
        return self.shape_counts.get(shape, 0) / self.sample_size

    def containment_fraction(self, operator_name: str) -> float:
        """Fraction of plans containing at least one such operator."""
        if not self.sample_size:
            return 0.0
        return self.plans_containing.get(operator_name, 0) / self.sample_size

    def render(self) -> str:
        lines = [
            f"analysis of {self.sample_size} plans "
            f"(mean size {self.mean_plan_size:.1f} operators, "
            f"mean depth {self.mean_plan_depth:.1f}):",
            "  join-tree shapes:",
        ]
        for shape, count in self.shape_counts.most_common():
            lines.append(
                f"    {shape:>10}: {count:>6} ({count / self.sample_size:.1%})"
            )
        lines.append("  operator containment (fraction of plans using it):")
        for name, count in self.plans_containing.most_common():
            lines.append(
                f"    {name:>20}: {count / self.sample_size:>7.1%}"
            )
        return "\n".join(lines)


def analyze_plans(plans: list[PlanNode]) -> PlanSampleAnalysis:
    """Compute shape/operator statistics for a plan sample."""
    analysis = PlanSampleAnalysis(sample_size=len(plans))
    if not plans:
        return analysis
    total_size = 0
    total_depth = 0
    for plan in plans:
        analysis.shape_counts[classify_join_shape(plan)] += 1
        seen: set[str] = set()
        for node in plan.iter_nodes():
            analysis.operator_counts[node.op.name] += 1
            seen.add(node.op.name)
        for name in seen:
            analysis.plans_containing[name] += 1
        total_size += plan.size()
        total_depth += plan.depth()
    analysis.mean_plan_size = total_size / len(plans)
    analysis.mean_plan_depth = total_depth / len(plans)
    return analysis
