"""Cost distributions over uniformly sampled plans (paper Section 5).

"Each experiment consists of a random sample of 10,000 plans from the
space.  All costs are normalized to the optimum plan found by the
optimizer, which has cost 1.0."

:func:`sample_cost_distribution` runs the full pipeline for one query —
optimize, open the plan space, draw a uniform sample, cost every sampled
plan with the optimizer's cost model, scale by the optimum — and returns
a :class:`CostDistribution` with the summary statistics the paper's
Table 1 reports plus everything Figure 4 needs.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.optimizer.optimizer import (
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
)
from repro.planspace.space import PlanSpace

__all__ = ["CostDistribution", "sample_cost_distribution", "distribution_from_result"]


@dataclass
class CostDistribution:
    """Scaled-cost sample for one query/one search space."""

    query_name: str
    allow_cross_products: bool
    total_plans: int
    best_cost: float
    scaled_costs: list[float] = field(default_factory=list)
    seed: int = 0

    # ------------------------------------------------------------------
    @property
    def sample_size(self) -> int:
        return len(self.scaled_costs)

    def minimum(self) -> float:
        return min(self.scaled_costs)

    def mean(self) -> float:
        return sum(self.scaled_costs) / len(self.scaled_costs)

    def maximum(self) -> float:
        return max(self.scaled_costs)

    def median(self) -> float:
        ordered = sorted(self.scaled_costs)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def fraction_within(self, factor: float) -> float:
        """Fraction of sampled plans with cost <= ``factor`` x optimum."""
        hits = sum(1 for cost in self.scaled_costs if cost <= factor)
        return hits / len(self.scaled_costs)

    def fraction_within_curve(
        self, factors: list[float]
    ) -> list[tuple[float, float]]:
        """``(factor, fraction_within(factor))`` for each requested factor
        — the paper's "how much of the space is within f x optimum"
        curves, one call for a whole report."""
        ordered = sorted(self.scaled_costs)
        n = len(ordered)
        curve = []
        for factor in factors:
            hits = bisect_right(ordered, factor)
            curve.append((factor, hits / n))
        return curve

    @staticmethod
    def _quantile_of(ordered: list[float], q: float) -> float:
        """``q``-quantile of a pre-sorted sample (linear interpolation
        between order statistics)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        lo = int(position)
        hi = min(lo + 1, len(ordered) - 1)
        weight = position - lo
        return ordered[lo] * (1.0 - weight) + ordered[hi] * weight

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the scaled costs (0 <= q <= 1)."""
        return self._quantile_of(sorted(self.scaled_costs), q)

    def quantiles(self, qs: list[float]) -> list[tuple[float, float]]:
        """``(q, quantile(q))`` for each requested ``q`` (one sort for
        the whole batch — reports ask for many quantiles of 10k+ samples)."""
        ordered = sorted(self.scaled_costs)
        return [(q, self._quantile_of(ordered, q)) for q in qs]

    def lower_half(self) -> list[float]:
        """The lower 50% of the sampled costs (Figure 4's zoom-in)."""
        ordered = sorted(self.scaled_costs)
        return ordered[: max(1, len(ordered) // 2)]

    # ------------------------------------------------------------------
    def gamma_shape(self) -> float | None:
        """Max-likelihood Gamma shape of ``scaled_costs - 1``.

        The paper observes distributions "resembling exponential
        distributions.  These shapes correspond to Gamma-distributions
        with shape parameter close to 1".  Returns ``None`` when scipy is
        unavailable or the sample is degenerate.
        """
        shifted = [c - 1.0 for c in self.scaled_costs if c > 1.0]
        if len(shifted) < 10:
            return None
        try:
            from scipy import stats
        except ImportError:  # pragma: no cover - scipy is installed here
            return None
        shape, _loc, _scale = stats.gamma.fit(shifted, floc=0.0)
        return float(shape)

    def skewness(self) -> float:
        """Sample skewness (asymmetric, right-tailed distributions > 0)."""
        n = len(self.scaled_costs)
        mean = self.mean()
        m2 = sum((c - mean) ** 2 for c in self.scaled_costs) / n
        m3 = sum((c - mean) ** 3 for c in self.scaled_costs) / n
        if m2 <= 0:
            return 0.0
        return m3 / math.sqrt(m2) ** 3

    def describe(self) -> str:
        return (
            f"{self.query_name} ({'with' if self.allow_cross_products else 'no'} "
            f"cross products): N={self.total_plans:,}, sample={self.sample_size}, "
            f"min={self.minimum():.2f}, mean={self.mean():.0f}, "
            f"max={self.maximum():.0f}, <=2x: {self.fraction_within(2):.2%}, "
            f"<=10x: {self.fraction_within(10):.2%}"
        )


def distribution_from_result(
    result: OptimizationResult,
    query_name: str,
    sample_size: int = 10_000,
    seed: int = 0,
) -> CostDistribution:
    """Sample the cost distribution of an already-optimized query."""
    space = PlanSpace.from_result(result)
    plans = space.sample(sample_size, seed=seed)
    best = result.best_cost
    scaled = [result.cost_model.plan_cost(plan) / best for plan in plans]
    return CostDistribution(
        query_name=query_name,
        allow_cross_products=result.options.allow_cross_products,
        total_plans=space.count(),
        best_cost=best,
        scaled_costs=scaled,
        seed=seed,
    )


def sample_cost_distribution(
    catalog: Catalog,
    sql: str,
    query_name: str,
    allow_cross_products: bool = False,
    sample_size: int = 10_000,
    seed: int = 0,
    options: OptimizerOptions | None = None,
) -> CostDistribution:
    """Optimize ``sql`` and sample its plan-space cost distribution."""
    if options is None:
        options = OptimizerOptions(allow_cross_products=allow_cross_products)
    result = Optimizer(catalog, options).optimize_sql(sql)
    return distribution_from_result(
        result, query_name, sample_size=sample_size, seed=seed
    )
