"""Reproduction of the paper's Figure 4: cost-distribution histograms.

"Figure 4 shows histograms of the cost distributions discussed.  The
pictures are actually zoom-ins to the lower 50% sampled costs; that is,
the part of the distribution that makes up for 50% of the space with the
optimum as left edge."

We render the same zoom-in as an ASCII histogram and annotate it with the
fitted Gamma shape parameter, which the paper expects to be close to 1
(exponential-like decay) for join-intensive queries.
"""

from __future__ import annotations

from repro.experiments.distributions import CostDistribution
from repro.util.histogram import AsciiHistogram

__all__ = ["figure4_histogram", "render_figure4"]


def figure4_histogram(
    dist: CostDistribution, bins: int = 25, width: int = 50
) -> AsciiHistogram:
    """The Figure 4 panel for one query: lower-50% scaled-cost histogram."""
    lower = dist.lower_half()
    title = (
        f"TPC-H {dist.query_name} "
        f"({'with' if dist.allow_cross_products else 'no'} cross products) — "
        f"lower 50% of {dist.sample_size} sampled scaled costs"
    )
    return AsciiHistogram.from_values(
        lower, bins=bins, width=width, title=title, lo=min(lower), hi=max(lower)
    )


def render_figure4(distributions: list[CostDistribution]) -> str:
    """All Figure 4 panels plus shape diagnostics."""
    sections = []
    for dist in distributions:
        histogram = figure4_histogram(dist)
        shape = dist.gamma_shape()
        shape_text = "n/a" if shape is None else f"{shape:.3f}"
        sections.append(
            "\n".join(
                [
                    histogram.render(),
                    f"gamma shape (paper expects ~1 for exponential-like): "
                    f"{shape_text}; skewness: {dist.skewness():.2f}",
                ]
            )
        )
    return "\n\n".join(sections)
