"""Reproduction of the paper's Table 1: search-space parameters of the
TPC-H join queries.

For each of Q5/Q7/Q8/Q9 and each cross-product policy the paper reports:
the exact plan count, the minimum/mean/maximum sampled cost (scaled to
the optimum = 1.0), and the fraction of sampled plans within 2x and 10x
of the optimum, from a uniform sample of 10,000 plans.

``PAPER_TABLE1`` embeds the published numbers so the harness prints
paper-vs-measured side by side.  Absolute plan counts and means are not
expected to match (our rule set and cost model differ from SQL Server
7.0's); the *shape* — astronomically large spaces, Q8 dominating, cross
products inflating every space, a non-trivial fraction of near-optimal
plans, heavily right-skewed costs — is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.experiments.distributions import CostDistribution, sample_cost_distribution
from repro.util.text import TextTable, format_count
from repro.workloads.tpch_queries import tpch_query

__all__ = ["Table1Row", "PAPER_TABLE1", "reproduce_table1", "render_table1"]

#: The queries of the paper's Table 1, in its row order.
TABLE1_QUERIES = ("Q5", "Q7", "Q8", "Q9")


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (paper or measured)."""

    query: str
    cross_products: bool
    plans: int
    min_cost: float
    mean_cost: float
    max_cost: float
    within_2x: float  # fraction, 0..1
    within_10x: float  # fraction, 0..1


#: The published Table 1 ("In a sample of 10000"; first four rows without,
#: last four with Cartesian products).
PAPER_TABLE1: tuple[Table1Row, ...] = (
    Table1Row("Q5", False, 68_572_049, 1.14, 17_098, 4_034_135, 0.0047, 0.1215),
    Table1Row("Q7", False, 228_107_572, 1.15, 3_318, 178_720, 0.0011, 0.4455),
    Table1Row("Q8", False, 20_112_521_035, 1.01, 111, 609, 0.0111, 0.147),
    Table1Row("Q9", False, 67_503_460, 1.10, 4_107, 109_825, 0.0011, 0.0408),
    Table1Row("Q5", True, 455_348_910, 1.23, 105_418, 1_287_700, 0.0029, 0.0570),
    Table1Row("Q7", True, 3_907_373_772, 1.48, 1_793_052, 1_523_086_611, 0.0003, 0.0279),
    Table1Row("Q8", True, 4_432_829_940_185, 1.31, 28_159_718, 32_595_091_399, 0.0006, 0.0185),
    Table1Row("Q9", True, 250_657_568, 1.30, 38_363_213, 35_866_936_219, 0.0002, 0.0700),
)


def row_from_distribution(dist: CostDistribution) -> Table1Row:
    return Table1Row(
        query=dist.query_name,
        cross_products=dist.allow_cross_products,
        plans=dist.total_plans,
        min_cost=dist.minimum(),
        mean_cost=dist.mean(),
        max_cost=dist.maximum(),
        within_2x=dist.fraction_within(2.0),
        within_10x=dist.fraction_within(10.0),
    )


def reproduce_table1(
    catalog: Catalog,
    sample_size: int = 10_000,
    seed: int = 0,
    queries: tuple[str, ...] = TABLE1_QUERIES,
) -> list[CostDistribution]:
    """Run the full Table 1 experiment: both cross-product policies for
    every query, one uniform sample each."""
    distributions = []
    for cross in (False, True):
        for name in queries:
            query = tpch_query(name)
            distributions.append(
                sample_cost_distribution(
                    catalog,
                    query.sql,
                    query_name=name,
                    allow_cross_products=cross,
                    sample_size=sample_size,
                    seed=seed,
                )
            )
    return distributions


def render_table1(
    distributions: list[CostDistribution], show_paper: bool = True
) -> str:
    """Format measured rows (and the paper's, for comparison)."""
    table = TextTable(
        [
            "Query", "Space", "#Plans", "Min", "Mean", "Max",
            "costs<=2", "costs<=10",
        ]
    )
    paper_by_key = {(row.query, row.cross_products): row for row in PAPER_TABLE1}
    for dist in distributions:
        row = row_from_distribution(dist)
        table.add_row(
            [
                row.query,
                "+cross" if row.cross_products else "no-cross",
                format_count(row.plans),
                f"{row.min_cost:.2f}",
                f"{row.mean_cost:,.0f}",
                f"{row.max_cost:,.0f}",
                f"{row.within_2x:.2%}",
                f"{row.within_10x:.2%}",
            ]
        )
        paper = paper_by_key.get((row.query, row.cross_products))
        if show_paper and paper is not None:
            table.add_row(
                [
                    f"  (paper {paper.query})",
                    "",
                    format_count(paper.plans),
                    f"{paper.min_cost:.2f}",
                    f"{paper.mean_cost:,.0f}",
                    f"{paper.max_cost:,.0f}",
                    f"{paper.within_2x:.2%}",
                    f"{paper.within_10x:.2%}",
                ]
            )
    return table.render()
