"""The paper's Section 5 experiments (system S11): cost distributions of
uniformly sampled plans, the Table 1 search-space parameters, and the
Figure 4 histograms."""

from repro.experiments.distributions import (
    CostDistribution,
    sample_cost_distribution,
)
from repro.experiments.table1 import (
    PAPER_TABLE1,
    Table1Row,
    reproduce_table1,
    render_table1,
)
from repro.experiments.figure4 import figure4_histogram, render_figure4
from repro.experiments.analysis import (
    PlanSampleAnalysis,
    analyze_plans,
    classify_join_shape,
    operator_mix,
)

__all__ = [
    "PlanSampleAnalysis",
    "analyze_plans",
    "classify_join_shape",
    "operator_mix",
    "CostDistribution",
    "sample_cost_distribution",
    "PAPER_TABLE1",
    "Table1Row",
    "reproduce_table1",
    "render_table1",
    "figure4_histogram",
    "render_figure4",
]
