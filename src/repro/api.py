"""The Session facade: the closest thing to a database connection.

Wraps a database + optimizer and executes SQL end-to-end, honouring the
paper's ``OPTION (USEPLAN n)`` extension::

    session = Session.tpch(seed=0)
    session.execute("SELECT ... OPTION (USEPLAN 8)")   # forces plan 8
    session.execute("SELECT ...")                      # optimizer's choice

"Using scripting primitives, any given query can be extended easily with
the OPTION clause and a loop construct that iterates over a
deterministically or randomly selected set of possible plans."
(Section 4.)  :meth:`Session.iterate_plans` is that loop construct.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass, replace

from repro.errors import PlanSpaceError
from repro.executor.executor import PlanExecutor, QueryResult
from repro.obs import Metrics, Tracer, phase as obs_phase, tracing
from repro.obs.feedback import (
    CardinalityLedger,
    FeedbackReport,
    accuracy_report,
    plan_cost_under_ledger,
)
from repro.optimizer.optimizer import (
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
)
from repro.optimizer.plan import PlanNode
from repro.planspace.implicit import ImplicitPlanSpace
from repro.planspace.space import PlanSpace
from repro.serving.cache import CacheInfo, CacheKey, TemplateArtifacts
from repro.serving.fingerprint import (
    catalog_signature,
    fingerprint_sql,
    options_signature,
)
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.database import Database
from repro.storage.datagen import generate_tpch

__all__ = ["Session", "ExecutedQuery", "PlanSpaceHandle"]


@dataclass
class PlanSpaceHandle:
    """A count-only view of a query's plan space.

    Wraps the implicit engine: counting, unranking, enumeration and
    sampling work immediately (and on clique-sized spaces interactively),
    but no physical memo — and no best plan — exists.  The handle exposes
    the same primitives as :class:`~repro.planspace.space.PlanSpace`, so
    callers that only count/sample can switch with ``count_only=True``
    and change nothing else; :meth:`materialize` runs the full optimizer
    when the memo itself is eventually needed.
    """

    session: "Session"
    sql: str
    space: ImplicitPlanSpace

    def count(self) -> int:
        return self.space.count()

    def unrank(self, rank: int) -> PlanNode:
        return self.space.unrank(rank)

    def rank(self, plan: PlanNode) -> int:
        return self.space.rank(plan)

    def sample(
        self, n: int, seed: int | random.Random = 0, unique: bool = False
    ) -> list[PlanNode]:
        return self.space.sample(n, seed=seed, unique=unique)

    def sample_ranks(
        self, n: int, seed: int | random.Random = 0, unique: bool = False
    ) -> list[int]:
        return self.space.sample_ranks(n, seed=seed, unique=unique)

    def sampler(self, seed: int | random.Random = 0):
        return self.space.sampler(seed)

    def enumerate(self, start: int = 0, stop: int | None = None, step: int = 1):
        return self.space.enumerate(start=start, stop=stop, step=step)

    def all_plans(self, limit: int | None = None) -> list[PlanNode]:
        return self.space.all_plans(limit=limit)

    def describe(self) -> str:
        return self.space.describe()

    def __len__(self) -> int:
        return self.count()

    def materialize(self) -> PlanSpace:
        """Build the full (physical-memo) plan space for this query."""
        return self.session.plan_space(self.sql)


@dataclass
class ExecutedQuery:
    """The result of one statement plus how it was produced."""

    result: QueryResult
    optimization: OptimizationResult
    used_rank: int | None  # None = optimizer's own plan

    @property
    def rows(self) -> list[tuple]:
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        return self.result.columns


class Session:
    """A connection-like object: parse, optimize, execute."""

    def __init__(
        self,
        database: Database,
        options: OptimizerOptions | None = None,
        check_orders: bool = False,
        plan_cache=None,
    ):
        self.database = database
        self.catalog = database.catalog
        self.options = options if options is not None else OptimizerOptions()
        self.executor = PlanExecutor(database, check_orders=check_orders)
        #: optional :class:`repro.serving.PlanCache`: when set, every
        #: exhaustive ``optimize`` call is cache-aware — final plans are
        #: served for exact-match requests, and per-template artifacts
        #: skip exploration on cost-relevant misses.  The cache is
        #: thread-safe and meant to be *shared* across the sessions of a
        #: :class:`repro.serving.PlanServer`.
        self.plan_cache = plan_cache
        # cache-identity memos: the catalog is immutable for the life of
        # a session (feedback flows through the ledger, not the stats),
        # so its signature is computed once; options signatures vary only
        # by per-call prune_factor.
        self._catalog_sig: str | None = None
        self._options_sigs: dict = {}
        #: the session's metrics registry: fresh (empty) per session,
        #: fed by traced calls (``optimize(..., trace=True)``,
        #: ``explain(analyze=True)``); ``metrics.reset()`` clears it
        self.metrics = Metrics()
        #: the session's cardinality ledger: observed per-subplan
        #: cardinalities keyed by relation bitmask, fed automatically by
        #: every analyzing execution (``execute_detailed(analyze=True)``,
        #: ``execute(feedback=True)``); consumed by
        #: ``optimize(feedback=True)`` and ``estimation_report()``
        self.ledger = CardinalityLedger()

    # ------------------------------------------------------------------
    @classmethod
    def tpch(
        cls,
        seed: int = 0,
        options: OptimizerOptions | None = None,
        rows: dict[str, int] | None = None,
    ) -> "Session":
        """A session over the micro TPC-H instance with SF=1 statistics."""
        return cls(generate_tpch(seed=seed, rows=rows), options=options)

    # ------------------------------------------------------------------
    def optimize(
        self,
        sql: str,
        method: str = "exhaustive",
        prune_factor: float | None = None,
        deadline_s: float | None = None,
        on_budget: str = "degrade",
        cancellation=None,
        max_expressions: int | None = None,
        max_memory_mb: float | None = None,
        trace: bool = False,
        feedback=None,
        **kwargs,
    ):
        """Optimize a statement.

        ``method="exhaustive"`` (the default) runs the full memo pipeline
        and returns an :class:`OptimizationResult`.  ``prune_factor``
        additionally applies cost-bound pruning after implementation
        (:func:`repro.optimizer.pruning.prune_memo`): every physical
        alternative whose best achievable rooted cost exceeds
        ``prune_factor`` x its group's best is dropped from the memo the
        result carries — the optimum always survives (factor >= 1.0).

        ``deadline_s`` (exhaustive only) bounds the optimization's wall
        clock; ``max_expressions``/``max_memory_mb`` cap memo size and
        process peak RSS; ``cancellation`` takes a
        :class:`~repro.resilience.CancellationToken` another thread may
        trip.  When any bound bites, ``on_budget="degrade"`` (default)
        falls back exact → sampled → greedy heuristic and reports how on
        ``result.resilience``; ``on_budget="raise"`` propagates the
        budget error instead.  Without any of these arguments the
        historical unbudgeted path runs unchanged.

        ``method="sampled"`` runs the memo-free sampled optimizer
        (:class:`repro.sampledopt.SampledOptimizer`) instead and returns
        a :class:`~repro.sampledopt.SampledOptimizationResult` — same
        ``best_plan``/``best_cost``/``explain()`` surface plus sampling
        quality metadata; keyword arguments (``budget_s``, ``samples``,
        ``seed``, ``rule``, ``stratified``) are forwarded.  On
        clique-sized join spaces the sampled path answers in seconds
        where the memo takes minutes.

        ``trace=True`` runs the call under the observability layer
        (:mod:`repro.obs`): ``result.trace`` carries the nested phase
        span tree (``parse`` → ``bind`` → ``setup`` → ``explore`` → ...,
        or the sampled / degradation-tier phases), and the session's
        ``metrics`` registry accumulates hot-loop counters from the same
        checkpoint sites the resilience layer polls.  The default
        (``trace=False``) path carries no instrumentation.

        ``feedback`` (exhaustive only) re-costs the search under
        execution-observed cardinalities: ``True`` consults the
        session's own ledger (fed by ``execute(feedback=True)`` /
        ``execute_detailed(analyze=True)``), a
        :class:`~repro.obs.CardinalityLedger` is used as given, and a
        path loads a saved ledger JSON.  Every join-level subplan the
        ledger covers is costed at its observed (EWMA) cardinality;
        everything unobserved keeps the static estimate.
        ``result.feedback`` then carries the chosen-plan delta
        (:class:`~repro.obs.FeedbackReport`): whether the plan changed
        versus the estimate-only baseline, and both plans' costs under
        the observed assignment.  It stays ``None`` when the ledger
        covers nothing of this query.  ``feedback=None`` (the default)
        is byte-identical to the historical path.

        With a ``plan_cache`` attached (exhaustive only), the call is
        cache-aware: an exact-match request (same template, same literal
        vector, same catalog/config identity, same feedback epoch) is
        served the cached final plan without optimizing at all
        (``result.cache.tier == "plan"``); a plan-tier miss still reuses
        the template's cached artifacts to skip exploration
        (``"template"``); a cold call runs the full pipeline and
        populates both tiers (``"miss"``).  Feedback-costed entries are
        invalidated — re-costed, never served stale — once the ledger's
        stats epoch moves past the q-error threshold.
        """
        ledger = self._resolve_feedback(feedback, method)
        cache = self.plan_cache if method == "exhaustive" else None
        fp = key = artifacts = None
        if cache is not None:
            fp = fingerprint_sql(sql)
            key = self._cache_identity(fp, prune_factor)
            entry = cache.lookup_plan(
                key,
                fp.params,
                ledger is not None,
                epoch=ledger.stats_epoch if ledger is not None else None,
                metrics=self.metrics,
            )
            if entry is not None:
                return self._serve_cached_plan(entry, fp, trace)
            artifacts = cache.lookup_template(key, metrics=self.metrics)
        if trace:
            tracer = Tracer()
            with tracing(tracer):
                with tracer.span("optimize"):
                    result = self._optimize(
                        sql,
                        method=method,
                        prune_factor=prune_factor,
                        deadline_s=deadline_s,
                        on_budget=on_budget,
                        cancellation=cancellation,
                        max_expressions=max_expressions,
                        max_memory_mb=max_memory_mb,
                        observed=True,
                        ledger=ledger,
                        artifacts=artifacts,
                        **kwargs,
                    )
            result.trace = tracer.root
            self._record_result_metrics(result)
        else:
            result = self._optimize(
                sql,
                method=method,
                prune_factor=prune_factor,
                deadline_s=deadline_s,
                on_budget=on_budget,
                cancellation=cancellation,
                max_expressions=max_expressions,
                max_memory_mb=max_memory_mb,
                ledger=ledger,
                artifacts=artifacts,
                **kwargs,
            )
        if ledger is not None:
            self._attach_feedback_report(sql, result, ledger)
        if cache is not None:
            self._cache_admit(cache, key, fp, result, ledger, artifacts)
        return result

    # ------------------------------------------------------------------
    # plan-cache plumbing
    # ------------------------------------------------------------------
    def _cache_identity(self, fp, prune_factor=None) -> CacheKey:
        """The template-level cache key for this session's environment."""
        if self._catalog_sig is None:
            self._catalog_sig = catalog_signature(self.catalog)
        config = self._options_sigs.get(prune_factor)
        if config is None:
            config = options_signature(self.options, prune_factor)
            self._options_sigs[prune_factor] = config
        return CacheKey(
            template=fp.template, catalog=self._catalog_sig, config=config
        )

    def _serve_cached_plan(self, entry, fp, trace: bool):
        """Serve a plan-tier hit: a shallow copy of the cached result
        (same memo, byte-identical plan) tagged with ``result.cache``.
        Under tracing the span tree is ``optimize`` → ``cache.hit`` —
        the shape tests assert to prove no optimization phase ran."""
        info = CacheInfo(
            tier="plan",
            fingerprint=fp.digest,
            template_age_s=entry.age_s(),
            hits=entry.hits,
        )
        result = replace(entry.result, cache=info)
        if trace:
            tracer = Tracer()
            with tracing(tracer):
                with tracer.span("optimize"):
                    with obs_phase("cache.hit") as span:
                        span.add("hits", entry.hits)
            result.trace = tracer.root
            self._record_result_metrics(result)
        return result

    def _cache_admit(self, cache, key, fp, result, ledger, artifacts) -> None:
        """Populate the cache from a finished optimization and tag the
        result with how the call interacted with the cache.

        Only exact results are admitted: a degraded (sampled/heuristic)
        plan is a deadline artefact, not the template's plan, and must
        not be served to unhurried callers.  The stored copy drops the
        per-call trace and cache tag.
        """
        resilience = getattr(result, "resilience", None)
        exact = resilience is None or resilience.tier == "exact"
        if exact and getattr(result, "memo", None) is not None:
            stored = replace(result, trace=None, cache=None)
            cache.store_plan(
                key,
                fp.params,
                stored,
                ledger is not None,
                epoch=ledger.stats_epoch if ledger is not None else None,
            )
            captured = TemplateArtifacts.capture(result)
            if captured is not None:
                cache.store_template(key, captured)
        timings = getattr(result, "timings", None) or {}
        replayed = timings.get("explore_source") == "cached"
        if artifacts is not None and replayed:
            info = CacheInfo(
                tier="template",
                fingerprint=fp.digest,
                template_age_s=artifacts.age_s(),
            )
        else:
            info = CacheInfo(tier="miss", fingerprint=fp.digest)
        try:
            result.cache = info
        except AttributeError:
            pass  # degraded result flavours without the field stay untagged

    def _resolve_feedback(self, feedback, method: str):
        """Normalize ``optimize``'s ``feedback`` argument to a ledger.

        ``None``/``False`` → no feedback; ``True`` → the session's own
        ledger; a :class:`~repro.obs.CardinalityLedger` → itself; a
        path → :meth:`CardinalityLedger.load`.  An *empty* ledger
        resolves to ``None``: nothing could be substituted, so the
        byte-identical default path runs and ``result.feedback`` stays
        unset.
        """
        if feedback is None or feedback is False:
            return None
        if method != "exhaustive":
            raise PlanSpaceError(
                "feedback re-costing applies to exhaustive optimization "
                "(the sampled path rebuilds its estimates per batch from "
                "catalog statistics)"
            )
        if feedback is True:
            ledger = self.ledger
        elif isinstance(feedback, CardinalityLedger):
            ledger = feedback
        else:
            ledger = CardinalityLedger.load(feedback)
        return ledger if ledger else None

    def _attach_feedback_report(self, sql: str, result, ledger) -> None:
        """Compute the chosen-plan delta and set ``result.feedback``.

        Re-optimizes the statement *without* the ledger and prices both
        chosen plans under the same observed-cardinality assignment
        (:func:`repro.obs.plan_cost_under_ledger`), so the factor
        measures plan quality under measured reality rather than
        estimate drift.  Skipped (``result.feedback`` stays ``None``)
        when the resilient ladder degraded off the exact tier — the
        served plan never saw the ledger.
        """
        memo = getattr(result, "memo", None)
        graph = getattr(result, "graph", None)
        cost_model = getattr(result, "cost_model", None)
        if memo is None or graph is None or cost_model is None:
            return
        resilience = getattr(result, "resilience", None)
        if resilience is not None and resilience.tier != "exact":
            return
        substituted = getattr(
            getattr(result, "estimator", None), "feedback_hits", 0
        )
        if not substituted:
            # The ledger covered nothing of this query (e.g. it holds a
            # different universe): the chosen plan IS the baseline, so
            # there is no delta to report — and no baseline to re-derive.
            return
        options = getattr(result, "options", None) or self.options
        baseline = Optimizer(self.catalog, options).optimize_sql(sql)
        binding = ledger.binding(graph.universe.order)
        baseline_cost_feedback = plan_cost_under_ledger(
            baseline.best_plan, baseline.memo, binding, cost_model
        )
        feedback_cost = plan_cost_under_ledger(
            result.best_plan, memo, binding, cost_model
        )
        result.feedback = FeedbackReport(
            plan_changed=(
                result.best_plan.fingerprint()
                != baseline.best_plan.fingerprint()
            ),
            substituted=substituted,
            baseline_cost=baseline.best_cost,
            baseline_cost_feedback=baseline_cost_feedback,
            feedback_cost=feedback_cost,
            improvement_factor=(
                baseline_cost_feedback / feedback_cost
                if feedback_cost > 0
                else 1.0
            ),
        )

    def _optimize(
        self,
        sql: str,
        method: str = "exhaustive",
        prune_factor: float | None = None,
        deadline_s: float | None = None,
        on_budget: str = "degrade",
        cancellation=None,
        max_expressions: int | None = None,
        max_memory_mb: float | None = None,
        observed: bool = False,
        ledger=None,
        artifacts=None,
        **kwargs,
    ):
        """The untraced dispatch behind :meth:`optimize`.  ``observed``
        threads a metrics-observing (budget-free) scope through paths
        that would otherwise run scope-less; ``ledger`` (already
        resolved by :meth:`_resolve_feedback`) feedback-recosts the
        exhaustive paths; ``artifacts`` (cached template artifacts)
        short-circuits their exploration phase."""
        obs_scope = None
        if observed:
            from repro.resilience.budget import BudgetScope

            obs_scope = BudgetScope(observer=self.metrics)
        resilience_args = (
            deadline_s is not None
            or cancellation is not None
            or max_expressions is not None
            or max_memory_mb is not None
        )
        if method == "exhaustive":
            if kwargs:
                raise PlanSpaceError(
                    "exhaustive optimization accepts no sampling arguments "
                    f"(got {sorted(kwargs)}); did you mean method='sampled'?"
                )
            options = self.options
            if prune_factor is not None:
                if prune_factor < 1.0:
                    # Validate before any optimization work is spent.
                    raise PlanSpaceError(
                        f"prune_factor must be >= 1.0 (got {prune_factor:g})"
                    )
                options = replace(options, pruning_factor=prune_factor)
            if resilience_args:
                from repro.resilience.budget import Budget
                from repro.resilience.degrade import optimize_resilient

                with obs_phase("parse"):
                    statement = parse(sql)
                with obs_phase("bind"):
                    bound = Binder(self.catalog).bind(statement)
                return optimize_resilient(
                    self.catalog,
                    bound,
                    options=options,
                    budget=Budget(
                        deadline_s=deadline_s,
                        max_expressions=max_expressions,
                        max_memory_mb=max_memory_mb,
                    ),
                    token=cancellation,
                    on_budget=on_budget,
                    observer=self.metrics if observed else None,
                    ledger=ledger,
                    artifacts=artifacts,
                )
            return Optimizer(self.catalog, options).optimize_sql(
                sql, scope=obs_scope, ledger=ledger, artifacts=artifacts
            )
        if method == "sampled":
            if prune_factor is not None:
                raise PlanSpaceError(
                    "prune_factor applies to exhaustive optimization only "
                    "(the sampled path never builds the memo it would prune)"
                )
            if resilience_args:
                raise PlanSpaceError(
                    "deadline_s/cancellation/ceilings apply to exhaustive "
                    "optimization (the degradation ladder); the sampled "
                    "method takes its own budget_s/samples arguments"
                )
            from repro.sampledopt import SampledOptimizer

            if obs_scope is not None and "scope" not in kwargs:
                kwargs["scope"] = obs_scope
            return SampledOptimizer(self.catalog, self.options).optimize_sql(
                sql, **kwargs
            )
        raise PlanSpaceError(
            f"unknown optimization method {method!r} "
            "(expected 'exhaustive' or 'sampled')"
        )

    def _record_result_metrics(self, result) -> None:
        """Gauge the result's search-space size into the metrics registry.

        Defensive by design: the three result flavours (exact, sampled,
        heuristic tier) carry different attributes, and a degraded
        resilient result may carry none of them.
        """
        metrics = self.metrics
        memo = getattr(result, "memo", None)
        if memo is not None:
            groups = getattr(memo, "groups", None)
            if groups is not None:
                metrics.set_gauge("memo.groups", len(groups))
            count = getattr(memo, "logical_expression_count", None)
            if callable(count):
                metrics.set_gauge("memo.logical_exprs", count())
            count = getattr(memo, "physical_expression_count", None)
            if callable(count):
                metrics.set_gauge("memo.physical_exprs", count())
        samples = getattr(result, "samples", None)
        if samples is not None:
            metrics.inc("sampler.draws", samples)
        resilience = getattr(result, "resilience", None)
        if resilience is not None:
            metrics.set_gauge(
                "resilience.attempts", len(resilience.attempts)
            )

    def plan_space(
        self, sql: str, count_only: bool = False
    ) -> PlanSpace | PlanSpaceHandle:
        """The plan space of a query (counting/sampling entry point).

        ``count_only=True`` skips the whole physical pipeline — no
        implementation phase, no best-plan search, no memo — and returns a
        :class:`PlanSpaceHandle` over the implicit engine instead: exact
        counts, unranking, enumeration and uniform sampling at a fraction
        of the cost (the clique12 memo takes minutes to materialize; its
        implicit count takes seconds).
        """
        if count_only:
            return PlanSpaceHandle(
                session=self,
                sql=sql,
                space=self.implicit_plan_space(sql),
            )
        return PlanSpace.from_result(self.optimize(sql))

    def implicit_plan_space(self, sql: str) -> ImplicitPlanSpace:
        """The implicit plan space of a query (no physical memo)."""
        bound = Binder(self.catalog).bind(parse(sql))
        return ImplicitPlanSpace.from_query(
            self.catalog, bound, options=self.options
        )

    def count_plans(self, sql: str, implicit: bool = True) -> int:
        """``N`` for a query; implicit (fast) by default.

        With a ``plan_cache`` attached, the implicit count is cached at
        the template tier: ``N`` depends on the join-graph structure
        only, never on literal values, so every literal variant of one
        template shares the answer.
        """
        if implicit:
            cache = self.plan_cache
            if cache is not None:
                fp = fingerprint_sql(sql)
                key = self._cache_identity(fp)
                count = cache.implicit_count(key, metrics=self.metrics)
                if count is None:
                    count = self.implicit_plan_space(sql).count()
                    cache.store_implicit_count(key, count)
                return count
            return self.implicit_plan_space(sql).count()
        return self.plan_space(sql).count()

    def cost_distribution(
        self,
        sql: str,
        query_name: str = "query",
        sample_size: int = 1000,
        seed: int = 0,
        materialized: bool = False,
        stratified: bool = False,
    ):
        """The query's sampled cost distribution (paper Section 5).

        Memo-free by default (costs scaled to the best plan recombinable
        from the sample); ``materialized=True`` runs the full optimizer
        and scales to its true optimum instead — the paper's exact
        setup, at memo-building prices.
        """
        if materialized:
            from repro.experiments.distributions import distribution_from_result

            return distribution_from_result(
                self.optimize(sql), query_name, sample_size=sample_size, seed=seed
            )
        from repro.sampledopt import sampled_distribution

        return sampled_distribution(
            self.catalog,
            sql,
            query_name,
            sample_size=sample_size,
            seed=seed,
            options=self.options,
            stratified=stratified,
        )

    def explain(self, sql: str, analyze: bool = False) -> str:
        """The best plan, rendered.

        ``analyze=True`` additionally *executes* the plan with operator
        instrumentation and renders estimated-vs-actual cardinality (and
        the q-error) per plan node — the classic ``EXPLAIN ANALYZE``.
        """
        if not analyze:
            return self.optimize(sql).explain()
        from repro.obs import render_analyze

        executed = self.execute_detailed(sql, analyze=True)
        header = (
            f"best cost: {executed.optimization.best_cost:,.1f}"
            if getattr(executed.optimization, "best_cost", None) is not None
            else "best cost: (unknown)"
        )
        return header + "\n" + render_analyze(executed.result.stats)

    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        max_rows: int | None = None,
        feedback: bool = False,
    ) -> QueryResult:
        """Execute a statement (honours ``OPTION (USEPLAN n)``).

        ``max_rows`` arms the executor's runaway guard: any operator
        producing more rows raises
        :class:`~repro.errors.ResourceExhausted` instead of materializing
        an exploding intermediate result.

        ``feedback=True`` executes with operator instrumentation and
        folds every observed join-level cardinality into the session's
        ledger (``self.ledger``) — the feeding half of the feedback
        loop that ``optimize(sql, feedback=True)`` consumes.
        """
        return self.execute_detailed(
            sql, max_rows=max_rows, feedback=True if feedback else None
        ).result

    def execute_detailed(
        self,
        sql: str,
        max_rows: int | None = None,
        analyze: bool = False,
        feedback: bool | None = None,
    ) -> ExecutedQuery:
        """Execute and keep the optimization alongside the rows.

        ``analyze=True`` collects per-operator runtime statistics
        (actual rows, wall time) on ``result.stats`` — see
        :class:`repro.obs.ExecutionStats` — and feeds the observed
        join-level cardinalities into the session's ledger
        (``self.ledger``).  ``feedback`` refines that default:
        ``True`` forces instrumentation (implies ``analyze=True``),
        ``False`` analyzes without feeding the ledger, ``None`` (the
        default) feeds exactly when analyzing.
        """
        if feedback:
            analyze = True
        statement = parse(sql)
        bound = Binder(self.catalog).bind(statement)
        optimization = Optimizer(self.catalog, self.options).optimize(bound)

        useplan = bound.options.useplan
        if useplan is None:
            plan = optimization.best_plan
        else:
            space = PlanSpace.from_result(optimization)
            total = space.count()
            if useplan >= total:
                raise PlanSpaceError(
                    f"USEPLAN {useplan} out of range: the space holds "
                    f"{total} plans (0..{total - 1})"
                )
            plan = space.unrank(useplan)
        scope = None
        if analyze:
            # Instrumented executions also feed the metrics registry
            # (the `execute.operator` checkpoint site), mirroring what
            # traced optimizations do for the optimizer-side sites.
            from repro.resilience.budget import BudgetScope

            scope = BudgetScope(observer=self.metrics)
        result = self.executor.execute(
            plan, max_rows=max_rows, collect_stats=analyze, scope=scope
        )
        if analyze and feedback is not False and result.stats is not None:
            self.ledger.record_execution(
                result.stats,
                optimization.memo,
                optimization.graph.universe.order,
            )
        return ExecutedQuery(
            result=result, optimization=optimization, used_rank=useplan
        )

    def estimation_report(self, worst_limit: int = 5):
        """Estimation accuracy against this session's observed actuals.

        Summarizes the ledger's q-errors — count/median/p90/max over the
        latest q-error of every observed subplan, plus the worst
        offenders — as an :class:`repro.obs.AccuracyReport`.  Feed the
        ledger first (``execute(feedback=True)`` or
        ``execute_detailed(analyze=True)``).
        """
        return accuracy_report(self.ledger, worst_limit=worst_limit)

    # ------------------------------------------------------------------
    def iterate_plans(
        self,
        sql: str,
        ranks: list[int] | None = None,
        sample: int | None = None,
        seed: int | random.Random = 0,
        implicit: bool = False,
    ) -> Iterator[tuple[int, QueryResult]]:
        """Execute one query under many plans (the Section 4 test loop).

        ``ranks`` runs exactly those plan numbers; ``sample`` draws a
        uniform sample instead; giving neither enumerates the whole space.
        ``implicit=True`` draws the plans from the implicit engine (no
        physical memo); the same ``seed`` selects the same ranks either
        way — see the RNG contract in :mod:`repro.util.rng`.  Yields
        ``(rank, result)`` pairs.
        """
        if implicit:
            space = self.plan_space(sql, count_only=True)
        else:
            space = PlanSpace.from_result(self.optimize(sql))
        if ranks is None:
            if sample is not None:
                ranks = space.sample_ranks(sample, seed=seed)
            else:
                ranks = range(space.count())  # type: ignore[assignment]
        for rank in ranks:
            plan = space.unrank(rank)
            yield rank, self.executor.execute(plan)
