"""The Session facade: the closest thing to a database connection.

Wraps a database + optimizer and executes SQL end-to-end, honouring the
paper's ``OPTION (USEPLAN n)`` extension::

    session = Session.tpch(seed=0)
    session.execute("SELECT ... OPTION (USEPLAN 8)")   # forces plan 8
    session.execute("SELECT ...")                      # optimizer's choice

"Using scripting primitives, any given query can be extended easily with
the OPTION clause and a loop construct that iterates over a
deterministically or randomly selected set of possible plans."
(Section 4.)  :meth:`Session.iterate_plans` is that loop construct.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import PlanSpaceError
from repro.executor.executor import PlanExecutor, QueryResult
from repro.optimizer.optimizer import (
    OptimizationResult,
    Optimizer,
    OptimizerOptions,
)
from repro.planspace.space import PlanSpace
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.database import Database
from repro.storage.datagen import generate_tpch

__all__ = ["Session", "ExecutedQuery"]


@dataclass
class ExecutedQuery:
    """The result of one statement plus how it was produced."""

    result: QueryResult
    optimization: OptimizationResult
    used_rank: int | None  # None = optimizer's own plan

    @property
    def rows(self) -> list[tuple]:
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        return self.result.columns


class Session:
    """A connection-like object: parse, optimize, execute."""

    def __init__(
        self,
        database: Database,
        options: OptimizerOptions | None = None,
        check_orders: bool = False,
    ):
        self.database = database
        self.catalog = database.catalog
        self.options = options if options is not None else OptimizerOptions()
        self.executor = PlanExecutor(database, check_orders=check_orders)

    # ------------------------------------------------------------------
    @classmethod
    def tpch(
        cls,
        seed: int = 0,
        options: OptimizerOptions | None = None,
        rows: dict[str, int] | None = None,
    ) -> "Session":
        """A session over the micro TPC-H instance with SF=1 statistics."""
        return cls(generate_tpch(seed=seed, rows=rows), options=options)

    # ------------------------------------------------------------------
    def optimize(self, sql: str) -> OptimizationResult:
        return Optimizer(self.catalog, self.options).optimize_sql(sql)

    def plan_space(self, sql: str) -> PlanSpace:
        """The plan space of a query (counting/sampling entry point)."""
        return PlanSpace.from_result(self.optimize(sql))

    def explain(self, sql: str) -> str:
        return self.optimize(sql).explain()

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        """Execute a statement (honours ``OPTION (USEPLAN n)``)."""
        return self.execute_detailed(sql).result

    def execute_detailed(self, sql: str) -> ExecutedQuery:
        statement = parse(sql)
        bound = Binder(self.catalog).bind(statement)
        optimization = Optimizer(self.catalog, self.options).optimize(bound)

        useplan = bound.options.useplan
        if useplan is None:
            plan = optimization.best_plan
        else:
            space = PlanSpace.from_result(optimization)
            total = space.count()
            if useplan >= total:
                raise PlanSpaceError(
                    f"USEPLAN {useplan} out of range: the space holds "
                    f"{total} plans (0..{total - 1})"
                )
            plan = space.unrank(useplan)
        result = self.executor.execute(plan)
        return ExecutedQuery(
            result=result, optimization=optimization, used_rank=useplan
        )

    # ------------------------------------------------------------------
    def iterate_plans(
        self,
        sql: str,
        ranks: list[int] | None = None,
        sample: int | None = None,
        seed: int = 0,
    ) -> Iterator[tuple[int, QueryResult]]:
        """Execute one query under many plans (the Section 4 test loop).

        ``ranks`` runs exactly those plan numbers; ``sample`` draws a
        uniform sample instead; giving neither enumerates the whole space.
        Yields ``(rank, result)`` pairs.
        """
        optimization = self.optimize(sql)
        space = PlanSpace.from_result(optimization)
        if ranks is None:
            if sample is not None:
                ranks = space.sample_ranks(sample, seed=seed)
            else:
                ranks = range(space.count())  # type: ignore[assignment]
        for rank in ranks:
            plan = space.unrank(rank)
            yield rank, self.executor.execute(plan)
