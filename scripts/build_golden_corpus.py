"""Regenerate the committed golden-plan corpus fixture.

Builds :func:`repro.testing.corpus.default_golden_sections` into
``tests/data/golden_corpus.json``: per section, the optimizer's chosen
plan (full render + cost + plan-space size) and result digests for a
seeded sample of plans.  The tier-1 replay test
(``tests/testing/test_golden_corpus.py``) verifies every later build
against this file, so best-plan or cost changes surface as explicit
diffs — rerun this script (and review the diff!) only when a change is
*intended* to alter plan choice, costing, or the plan space::

    PYTHONPATH=src python scripts/build_golden_corpus.py
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.testing.corpus import build_corpus, default_golden_sections

PLANS_PER_QUERY = 12
SEED = 1

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "tests" / "data"


def main() -> int:
    payload = {}
    for name, (session, queries) in default_golden_sections().items():
        corpus = build_corpus(
            session, queries, plans_per_query=PLANS_PER_QUERY, seed=SEED
        )
        payload[name] = json.loads(corpus.to_json())
        print(
            f"{name}: {len(corpus.plans)} queries, "
            f"{len(corpus.records)} golden plan digests"
        )
    OUTPUT.mkdir(parents=True, exist_ok=True)
    path = OUTPUT / "golden_corpus.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
