#!/usr/bin/env bash
# Repository check: the tier-1 test suite plus perf smokes that guard
# the implicit plan-space engine against regressing into
# re-materialization, exact optimization against falling off the
# columnar memo path, and the sampled optimizer's quality/latency.
#
#     bash scripts/ci.sh            # tier-1 + perf smokes
#     CI_SLOW=1 bash scripts/ci.sh  # additionally run the -m slow tier
#
# The perf smoke counts the clique10 no-cross space implicitly and fails
# if it takes longer than ${CI_COUNT_BUDGET_S:-10} seconds of wall clock.
# The materialized pipeline needs ~45s of memo + link construction for
# that same space (BENCH_planspace.json), so a budget miss almost
# certainly means the implicit path started materializing
# per-expression state again.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

if [[ "${CI_SLOW:-0}" != "0" ]]; then
    echo "== slow tier =="
    python -m pytest -x -q -m slow
fi

echo "== implicit count perf smoke =="
python - <<'EOF'
import os
import time

from repro.optimizer.optimizer import OptimizerOptions
from repro.planspace.implicit import ImplicitPlanSpace
from repro.workloads.synthetic import clique_query

budget = float(os.environ.get("CI_COUNT_BUDGET_S", "10"))
workload = clique_query(10, rows=5, seed=0)
start = time.perf_counter()
space = ImplicitPlanSpace.from_sql(
    workload.catalog, workload.sql, options=OptimizerOptions()
)
total = space.count()
elapsed = time.perf_counter() - start
print(
    f"clique10 no-cross: N={total:.3e} in {elapsed:.2f}s "
    f"(budget {budget:.0f}s, turbo={space.state.turbo_used})"
)
expected = 2171074081505474005104170938254011092792438446472041794816
assert total == expected, f"implicit clique10 count changed: {total}"
assert elapsed < budget, (
    f"implicit clique10 count took {elapsed:.2f}s (> {budget:.0f}s budget) — "
    "did the implicit engine start materializing the memo?"
)
EOF

echo "== columnar exact-optimize smoke =="
python - <<'EOF'
import os
import time

from repro.api import Session
from repro.optimizer.optimizer import OptimizerOptions
from repro.workloads.synthetic import star_query

# Exact optimization must stay on the columnar path.  The
# memo.columnar assert below is the authoritative path check; the
# wall-clock budget is a coarse end-to-end guard with >10x headroom
# over the measured ~0.07s (star12 no-cross, SQL -> best plan over a
# 92k-expression space under the fused implement+DP pass; the object
# path needs ~0.54s on the same machine), so loaded/slower runners do
# not flake.
budget = float(os.environ.get("CI_OPTIMIZE_BUDGET_S", "1.0"))
workload = star_query(12, rows=5, seed=0)
session = Session(workload.database, options=OptimizerOptions())
best = float("inf")
for _ in range(3):
    start = time.perf_counter()
    result = session.optimize(workload.sql)
    best = min(best, time.perf_counter() - start)
print(
    f"star12 no-cross: exact optimize {best:.3f}s "
    f"(budget {budget:g}s, columnar={result.memo.columnar is not None})"
)
assert result.memo.columnar is not None, (
    "Session.optimize no longer takes the columnar path on star12"
)
assert best < budget, (
    f"exact optimization took {best:.3f}s (> {budget:g}s budget) — did the "
    "columnar memo path regress to object construction?"
)
EOF

echo "== clique12 exact-optimize smoke =="
python - <<'EOF'
import gc
import os
import time

from repro.api import Session
from repro.optimizer.optimizer import OptimizerOptions
from repro.workloads.synthetic import clique_query

# The fused implement+DP pass must keep the *hardest* exact workload
# interactive: clique12 no-cross is a 2.9M-physical-expression space
# that the pre-fusion pipeline optimized in ~12.5s and the fused
# columnar kernel in ~2.4s (warm min).  Best-of-N wall clock against a
# 2.5s budget; the known optimal cost pins byte-identical planning.
# GC between runs, with the previous result dropped first — collecting
# a live multi-hundred-MB store mid-measurement doubles a sample.
budget = float(os.environ.get("CI_CLIQUE12_BUDGET_S", "2.5"))
runs = int(os.environ.get("CI_CLIQUE12_RUNS", "6"))
workload = clique_query(12, rows=5, seed=0)
session = Session(workload.database, options=OptimizerOptions())
best = float("inf")
result = None
for _ in range(runs):
    del result
    gc.collect()
    start = time.perf_counter()
    result = session.optimize(workload.sql)
    best = min(best, time.perf_counter() - start)
print(
    f"clique12 no-cross: exact optimize min {best:.3f}s of {runs} "
    f"(budget {budget:g}s, kernel={result.kernel}, "
    f"pruned_states={result.timings.get('pruned_states')})"
)
assert result.memo.columnar is not None, (
    "Session.optimize no longer takes the columnar path on clique12"
)
assert result.best_cost == 156.56, (
    f"clique12 optimal cost changed: {result.best_cost!r} != 156.56 — "
    "the fused pass is no longer byte-identical"
)
assert best < budget, (
    f"clique12 exact optimization took {best:.3f}s (> {budget:g}s "
    "budget) — the fused implement+DP kernel regressed"
)
EOF

echo "== batched exploration smoke =="
python - <<'EOF'
import os
import time

from repro.optimizer.explorer import EnumerationExplorer
from repro.optimizer.setup import build_initial_memo
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.workloads.synthetic import clique_query

# Building the clique12 no-cross logical memo (523k join expressions,
# 4k groups) must stay on the batched columnar path: whole csg-cmp
# buckets emitted as child-gid array blocks, ~0.35s on this machine
# vs ~15s for the per-expression object insert loop.  The budget has
# ~10x headroom over the batched time while sitting far below the
# object path, so a miss means batching silently regressed.
budget = float(os.environ.get("CI_EXPLORE_BUDGET_S", "4"))
workload = clique_query(12, rows=5, seed=0)
bound = Binder(workload.catalog).bind(parse(workload.sql))
best = float("inf")
for _ in range(3):
    setup = build_initial_memo(bound, False)
    start = time.perf_counter()
    EnumerationExplorer().explore(setup.memo, setup.graph, False)
    best = min(best, time.perf_counter() - start)
memo = setup.memo
logical = memo.logical_expression_count()
print(
    f"clique12 no-cross: explore {best:.3f}s (budget {budget:g}s, "
    f"{logical} logical exprs, batched={memo.columnar_logical is not None})"
)
assert memo.columnar_logical is not None, (
    "EnumerationExplorer no longer takes the batched columnar path on clique12"
)
assert logical == 523264, f"clique12 logical memo changed: {logical}"
assert best < budget, (
    f"exploration took {best:.3f}s (> {budget:g}s budget) — did the batched "
    "logical path regress to per-expression inserts?"
)
EOF

echo "== plan-serving smoke =="
python - <<'EOF'
import os
import time

from repro.api import Session
from repro.serving import PlanCache
from repro.workloads.synthetic import clique_query

# A warm plan-cache hit must be dramatically cheaper than the cold
# optimization it replaces — and byte-identical.  The measured warm
# serve is ~1.4ms against a ~0.3s cold clique10 run (>200x); the 5x
# floor has enormous headroom, so a miss means the cache stopped
# hitting (fingerprint or key identity drifted) rather than noise.
# The literal variant then proves the template tier: exploration is
# replayed, not re-enumerated, and the plan still matches an uncached
# reference.
floor = float(os.environ.get("CI_SERVING_SPEEDUP", "5"))
workload = clique_query(10, rows=5, seed=0)
session = Session(workload.database, plan_cache=PlanCache())
sql = workload.sql + " AND t0.val < 999"

start = time.perf_counter()
cold = session.optimize(sql)
cold_s = time.perf_counter() - start
start = time.perf_counter()
warm = session.optimize(sql)
warm_s = time.perf_counter() - start
speedup = cold_s / warm_s if warm_s > 0 else float("inf")
print(
    f"clique10 no-cross: cold {cold_s:.3f}s warm {warm_s * 1000:.2f}ms "
    f"({speedup:,.0f}x, floor {floor:g}x, tier={warm.cache.tier})"
)
assert warm.cache.tier == "plan", (
    f"second identical request served from tier {warm.cache.tier!r}, "
    "not the plan cache"
)
assert warm.explain() == cold.explain(), (
    "warm cache hit is not byte-identical to the cold plan"
)
assert warm.best_cost == cold.best_cost
assert speedup >= floor, (
    f"warm serve only {speedup:.1f}x faster than cold (< {floor:g}x) — "
    "the plan cache is no longer short-circuiting optimization"
)

# Same template, different literal: must skip enumeration via the
# cached logical store (span explore.cached, never explore).
variant = session.optimize(
    workload.sql + " AND t0.val < 1000000", trace=True
)
names = set()
stack = [variant.trace]
while stack:
    span = stack.pop()
    names.add(span.name)
    stack.extend(span.children)
assert variant.cache.tier == "template", (
    f"literal variant served from tier {variant.cache.tier!r}, not the "
    "template tier"
)
assert "explore.cached" in names and "explore" not in names, (
    "template-tier serve re-ran exploration instead of replaying the "
    "cached logical store"
)
EOF

echo "== sampled optimize smoke =="
python - <<'EOF'
import os
import time

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.sampledopt import SampledOptimizer
from repro.workloads.synthetic import clique_query

# The sampled optimizer must stay interactive where the memo is not:
# clique10 no-cross sampled-optimizes in well under the budget (default
# 2s of wall clock) and lands within the cost factor (default 2x) of the
# true optimum, seed-deterministically.  The materialized optimizer runs
# afterwards to provide that optimum (~8s; not counted against the
# budget — and not before the sampled run, whose timing would absorb
# collector pauses over the multi-hundred-MB memo heap).
budget = float(os.environ.get("CI_SAMPLED_BUDGET_S", "2"))
factor_cap = float(os.environ.get("CI_SAMPLED_FACTOR", "2"))
workload = clique_query(10, rows=5, seed=0)
options = OptimizerOptions()

start = time.perf_counter()
result = SampledOptimizer(workload.catalog, options).optimize_sql(
    workload.sql, seed=0
)
elapsed = time.perf_counter() - start

optimum = Optimizer(workload.catalog, options).optimize_sql(workload.sql)
factor = result.best_cost / optimum.best_cost
print(
    f"clique10 no-cross: sampled {result.best_cost:,.1f} vs optimum "
    f"{optimum.best_cost:,.1f} ({factor:.2f}x, cap {factor_cap:g}x) in "
    f"{elapsed:.2f}s (budget {budget:g}s, {result.samples} samples)"
)
assert factor <= factor_cap, (
    f"sampled optimization regressed to {factor:.2f}x the optimum "
    f"(> {factor_cap:g}x) — recombination or sampling quality broke"
)
assert elapsed < budget, (
    f"sampled optimization took {elapsed:.2f}s (> {budget:g}s budget) — "
    "did the sampled path start materializing the memo?"
)
EOF

echo "== deadline degradation smoke =="
python - <<'EOF'
import os
import time

from repro.executor.executor import PlanExecutor
from repro.optimizer.optimizer import OptimizerOptions
from repro.resilience import Budget
from repro.resilience.degrade import optimize_resilient
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.workloads.synthetic import clique_query

# A 1s deadline on clique12 no-cross (exact needs ~10s) must still
# serve an executable, costed plan, and must honour the deadline with
# only checkpoint-granularity overshoot: the wall-clock cap (default
# 2s = 2x the deadline) guards both the degradation ladder's dispatch
# and the cooperative-cancellation latency of the hot-loop checkpoints.
deadline = float(os.environ.get("CI_DEADLINE_S", "1.0"))
wall_cap = float(os.environ.get("CI_DEADLINE_WALL_CAP_S", "2.0"))
workload = clique_query(12, rows=5, seed=0)
bound = Binder(workload.catalog).bind(parse(workload.sql))
start = time.perf_counter()
result = optimize_resilient(
    workload.catalog,
    bound,
    OptimizerOptions(),
    budget=Budget(deadline_s=deadline),
)
elapsed = time.perf_counter() - start
report = result.resilience
print(
    f"clique12 no-cross: {report.describe()} "
    f"(wall {elapsed:.2f}s, cap {wall_cap:g}s)"
)
assert report.tier != "exact", (
    f"a {deadline:g}s deadline on clique12 served the exact tier — "
    "the deadline is not being enforced"
)
assert elapsed < wall_cap, (
    f"degraded optimization took {elapsed:.2f}s (> {wall_cap:g}s cap) — "
    "checkpoints are too sparse or the ladder is re-doing work"
)
rows = PlanExecutor(workload.database).execute(result.best_plan).rows
assert rows, "the degraded plan did not execute"
EOF

echo "== observability overhead smoke =="
python - <<'EOF'
import gc
import os
import statistics
import time

from repro.api import Session
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.workloads.synthetic import star_query

# With tracing off, the observability layer must cost nothing: the
# instrumented Session.optimize path vs the bare Optimizer call on
# star12 exact optimize.  Single timings jitter by several percent on a
# ~0.15s run, so each sample is a back-to-back bare/session pair (each
# side min-of-2, since timer noise is one-sided) and the estimator is
# the median of the per-pair ratios — pairing cancels machine drift,
# min-of-2 trims scheduler pauses, the median discards what remains.
# The true delta is one module-global read per *phase* (seven per
# optimize), which measures as ~0%; the cap (default 2%) flags any
# per-expression work leaking onto the untraced path.
cap_pct = float(os.environ.get("CI_OBS_OVERHEAD_PCT", "2.0"))
pairs = int(os.environ.get("CI_OBS_OVERHEAD_PAIRS", "11"))
workload = star_query(12, rows=5, seed=0)
options = OptimizerOptions()
session = Session(workload.database, options=options)
sql = workload.sql

def timed(fn):
    best = float("inf")
    for _ in range(2):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best

bare = lambda: Optimizer(workload.catalog, options).optimize_sql(sql)
traced_off = lambda: session.optimize(sql)
bare(); traced_off()  # warm caches outside the measurement
ratios = [timed(traced_off) / timed(bare) for _ in range(pairs)]
overhead_pct = 100.0 * (statistics.median(ratios) - 1.0)
print(
    f"star12 no-cross: disabled-instrumentation overhead "
    f"{overhead_pct:+.2f}% (median of {pairs} min-of-2 pairs, "
    f"cap {cap_pct:g}%)"
)
assert overhead_pct <= cap_pct, (
    f"the untraced optimize path is {overhead_pct:+.2f}% slower than the "
    f"bare optimizer (> {cap_pct:g}% cap) — instrumentation is leaking "
    "onto the disabled fast path"
)
EOF

echo "== explain analyze smoke =="
python - <<'EOF'
import io
import json

from repro.cli import main

# repro explain --analyze --json on a TPC-H query must emit valid JSON
# whose per-operator actuals are populated.
out = io.StringIO()
code = main(["explain", "Q3", "--analyze", "--json"], out=out)
assert code == 0, f"explain --analyze --json exited {code}"
payload = json.loads(out.getvalue())
root = payload["stats"]["root"]
assert payload["best_cost"] > 0
assert payload["stats"]["operators"] >= 1
assert root["est_rows"] > 0
def walk(node):
    yield node
    for child in node.get("children", []):
        yield from walk(child)

scans = [n for n in walk(root) if n["op"].endswith("Scan")]
assert scans and all(n["actual_rows"] > 0 for n in scans), (
    "no scan operator reported actual rows"
)
print(
    f"Q3 explain analyze: {payload['stats']['operators']} operators, "
    f"root actual={root['actual_rows']} rows, valid JSON"
)
EOF

echo "== feedback re-costing smoke =="
python - <<'EOF'
import os

from repro.api import Session
from repro.obs.feedback import plan_cost_under_ledger, true_cardinality_ledger
from repro.workloads.misestimated import misestimated_tpch
from repro.workloads.tpch_queries import tpch_query

# Close the loop on a seeded misestimated catalog: optimize, execute
# (feeding the session ledger), then optimize again with feedback.  The
# second choice, costed under *true* cardinalities, must be no worse
# than the first — and on this workload (inflated stats mispick Q3 by
# ~18x) it must actually land within the factor cap of the optimum.
factor_cap = float(os.environ.get("CI_FEEDBACK_FACTOR", "1.05"))
database = misestimated_tpch(seed=0)
session = Session(database)
sql = tpch_query("Q3").sql

first = session.optimize(sql)
oracle = true_cardinality_ledger(first, database)
binding = oracle.binding(first.graph.universe.order)
optimum_result = session.optimize(sql, feedback=oracle)
optimum = plan_cost_under_ledger(
    optimum_result.best_plan, optimum_result.memo,
    oracle.binding(optimum_result.graph.universe.order),
    optimum_result.cost_model,
)

def true_factor(result):
    cost = plan_cost_under_ledger(
        result.best_plan, result.memo,
        oracle.binding(result.graph.universe.order), result.cost_model,
    )
    return cost / optimum

first_factor = true_factor(first)
session.execute(sql, feedback=True)
second = session.optimize(sql, feedback=True)
second_factor = true_factor(second)
print(
    f"misestimated tpch Q3: true-cardinality cost factor "
    f"{first_factor:.4f}x -> {second_factor:.4f}x with feedback "
    f"(cap {factor_cap:g}x, {second.feedback.substituted} subplans "
    f"substituted)"
)
assert first_factor > 1.0 + 1e-9, (
    "the misestimated catalog no longer mispicks Q3 — the smoke lost "
    "its signal; re-seed workloads/misestimated.py"
)
assert second_factor <= first_factor + 1e-9, (
    f"feedback re-costing chose a worse plan ({first_factor:.4f}x -> "
    f"{second_factor:.4f}x under true cardinalities)"
)
assert second_factor <= factor_cap, (
    f"feedback re-costing left Q3 at {second_factor:.4f}x the true "
    f"optimum (> {factor_cap:g}x cap) — observed cardinalities are not "
    "reaching the estimator"
)
assert second.feedback is not None and second.feedback.substituted > 0, (
    "the second optimize reported no substituted cardinalities — the "
    "execution did not feed the session ledger"
)
EOF

echo "CI OK"
