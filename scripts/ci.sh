#!/usr/bin/env bash
# Repository check: the tier-1 test suite plus a perf smoke that guards
# the implicit plan-space engine against regressing into
# re-materialization.
#
#     bash scripts/ci.sh            # tier-1 + perf smoke
#     CI_SLOW=1 bash scripts/ci.sh  # additionally run the -m slow tier
#
# The perf smoke counts the clique10 no-cross space implicitly and fails
# if it takes longer than ${CI_COUNT_BUDGET_S:-10} seconds of wall clock.
# The materialized pipeline needs ~45s of memo + link construction for
# that same space (BENCH_planspace.json), so a budget miss almost
# certainly means the implicit path started materializing
# per-expression state again.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

if [[ "${CI_SLOW:-0}" != "0" ]]; then
    echo "== slow tier =="
    python -m pytest -x -q -m slow
fi

echo "== implicit count perf smoke =="
python - <<'EOF'
import os
import time

from repro.optimizer.optimizer import OptimizerOptions
from repro.planspace.implicit import ImplicitPlanSpace
from repro.workloads.synthetic import clique_query

budget = float(os.environ.get("CI_COUNT_BUDGET_S", "10"))
workload = clique_query(10, rows=5, seed=0)
start = time.perf_counter()
space = ImplicitPlanSpace.from_sql(
    workload.catalog, workload.sql, options=OptimizerOptions()
)
total = space.count()
elapsed = time.perf_counter() - start
print(
    f"clique10 no-cross: N={total:.3e} in {elapsed:.2f}s "
    f"(budget {budget:.0f}s, turbo={space.state.turbo_used})"
)
expected = 2171074081505474005104170938254011092792438446472041794816
assert total == expected, f"implicit clique10 count changed: {total}"
assert elapsed < budget, (
    f"implicit clique10 count took {elapsed:.2f}s (> {budget:.0f}s budget) — "
    "did the implicit engine start materializing the memo?"
)
EOF

echo "CI OK"
