"""cProfile wrapper for the optimizer pipeline — the perf-PR measurement.

Profiles one ``Session.optimize`` call on a synthetic workload and prints
the top functions by cumulative time, so that future performance PRs can
reproduce the measurements this PR's numbers were taken with::

    PYTHONPATH=src python scripts/profile_explore.py                 # star 12
    PYTHONPATH=src python scripts/profile_explore.py --shape clique --n 10
    PYTHONPATH=src python scripts/profile_explore.py --cross --sort tottime
    PYTHONPATH=src python scripts/profile_explore.py --shape clique --n 12 --count-only

It also prints the per-phase wall timings (un-profiled, best of
``--repeat`` runs), read off the observability layer's span tree
(``repro.obs``): every mode runs traced and reports the root span's
direct children, so the phase split here and the output of
``repro trace`` are the same measurement by construction — cProfile
inflates everything several-fold, so treat the profile as *where* the
time goes and the span timings as *how much* time there is.

``--count-only`` profiles the implicit plan-space pipeline instead of the
full optimizer: layout simulation + analytic counting, no physical memo.
Its numbers are directly comparable to the default mode's (same workload
construction, same best-of-N protocol), which is how the implicit
engine's headline wins are measured.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from repro.api import Session
from repro.obs import Span, Tracer, tracing
from repro.optimizer.optimizer import OptimizerOptions
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
)

WORKLOADS = {
    "chain": chain_query,
    "star": star_query,
    "clique": clique_query,
    "cycle": cycle_query,
}


def _phase_line(root: Span) -> str:
    """One line of ``phase elapsed`` pairs from the root's children.

    The fused implement+bestplan pass keeps its sub-phases as children of
    a ``fused`` span; flatten those so the phase names (and therefore the
    columns of this report) stay comparable across fused/unfused runs."""
    parts = []
    for child in root.children:
        if child.name == "fused" and child.children:
            parts.extend(
                (sub.name, sub.elapsed_s) for sub in child.children
            )
        else:
            parts.append((child.name, child.elapsed_s))
    return "  ".join(f"{name} {seconds:.4f}s" for name, seconds in parts)


def _best_of(run, repeat: int) -> tuple[object, Span]:
    """Run ``run`` (returning ``(outcome, root span)``) ``repeat`` times;
    keep the outcome of the last run and the span tree of the fastest."""
    best_root = None
    outcome = None
    for _ in range(repeat):
        outcome, root = run()
        if best_root is None or root.elapsed_s < best_root.elapsed_s:
            best_root = root
    return outcome, best_root


def phase_comparison(workload, args) -> int:
    """``--optimize-phases``: columnar vs object per-phase wall timings.

    Both engines optimize the same query under tracing; the per-phase
    numbers are the fastest run's span tree, so they are directly
    comparable to the default mode's phase line (same workload
    construction, same best-of-N protocol).
    """
    results = {}
    for engine, columnar in (("columnar", True), ("object", False)):
        options = OptimizerOptions(
            allow_cross_products=args.cross, columnar=columnar
        )
        session = Session(workload.database, options=options)

        def run():
            result = session.optimize(workload.sql, trace=True)
            return result, result.trace

        result, root = _best_of(run, args.repeat)
        results[engine] = result.best_cost
        kernel = getattr(result, "kernel", "pure")
        print(
            f"{workload.name} cross={'on' if args.cross else 'off'} "
            f"[{engine} kernel={kernel}]: total {root.elapsed_s:.4f}s  "
            f"{_phase_line(root)}"
        )
    assert results["columnar"] == results["object"], "engines disagree"
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", choices=sorted(WORKLOADS), default="star")
    parser.add_argument("--n", type=int, default=12)
    parser.add_argument("--cross", action="store_true")
    parser.add_argument("--top", type=int, default=15)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--sort", choices=["cumulative", "tottime"], default="cumulative"
    )
    parser.add_argument(
        "--count-only",
        action="store_true",
        help="profile the implicit (count-only) pipeline instead of the "
        "full optimizer",
    )
    parser.add_argument(
        "--optimize-phases",
        action="store_true",
        help="compare the columnar and object exact-optimization paths: "
        "per-phase wall timings for both (best of --repeat), no cProfile "
        "pass — the phase-split measurement optimization PRs quote",
    )
    args = parser.parse_args(argv)

    workload = WORKLOADS[args.shape](args.n, rows=5, seed=0)
    options = OptimizerOptions(allow_cross_products=args.cross)
    session = Session(workload.database, options=options)

    if args.optimize_phases:
        return phase_comparison(workload, args)

    mode = " count-only" if args.count_only else ""
    if args.count_only:
        from repro.planspace.implicit import ImplicitPlanSpace

        def run():
            tracer = Tracer()
            with tracing(tracer), tracer.span("count"):
                space = ImplicitPlanSpace.from_sql(
                    workload.catalog, workload.sql, options=options
                )
            return space, tracer.root

        def summarize(space):
            return (
                f"implicit space: {space.group_count()} groups, "
                f"{space.physical_operator_count()} virtual physical "
                f"operators, N = {space.count():,}\n"
            )

    else:

        def run():
            result = session.optimize(workload.sql, trace=True)
            return result, result.trace

        def summarize(result):
            return (
                f"memo: {len(result.memo.groups)} groups, "
                f"{result.memo.expression_count()} expressions\n"
            )

    # Un-profiled span timings first (best of N; the root span's children
    # are the per-phase split).
    outcome, root = _best_of(run, args.repeat)
    print(
        f"{workload.name} cross={'on' if args.cross else 'off'}{mode}: "
        f"total {root.elapsed_s:.4f}s  {_phase_line(root)}"
    )
    print(summarize(outcome))

    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
