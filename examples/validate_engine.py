"""Section 4 in action: validating a query processor with many plans.

First validates two TPC-H queries across their plan spaces (exhaustively
where feasible, by uniform sampling otherwise) — all plans must agree.
Then *injects a defect* into the execution engine (a merge join that
drops its last output row) and shows the harness pinpointing the broken
plans by rank, exactly the workflow the paper describes for SQL Server
development.

Run:  python examples/validate_engine.py
"""

from repro import Session
from repro.optimizer import OptimizerOptions
from repro.testing import DroppedRowExecutor, PlanValidator
from repro.workloads import tpch_query

TWO_TABLE = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)


def main() -> None:
    session = Session.tpch(
        seed=0, options=OptimizerOptions(allow_cross_products=False)
    )
    validator = PlanValidator(session.database, session.options)

    print("1. Exhaustive validation of a 2-table join:")
    report = validator.validate_sql(TWO_TABLE, max_exhaustive=5_000)
    print("  ", report.render().replace("\n", "\n   "), "\n")

    print("2. Sampled validation of TPC-H Q3 (space too large to exhaust):")
    report = validator.validate_sql(
        tpch_query("Q3").sql, max_exhaustive=500, sample_size=120, seed=7
    )
    print("  ", report.render().replace("\n", "\n   "), "\n")

    print("3. Now with a defective merge join (drops one output row):")
    broken = PlanValidator(
        session.database,
        session.options,
        executor=DroppedRowExecutor(session.database),
    )
    report = broken.validate_sql(TWO_TABLE, max_exhaustive=5_000)
    print(f"   mismatching plans: {len(report.mismatches)}")
    if report.mismatches:
        first = report.mismatches[0]
        print(f"   first failing plan is rank {first.rank} — reproduce with:")
        print(f"     ... OPTION (USEPLAN {first.rank})")
        print("   the failing plan:")
        print("   " + first.plan.render().replace("\n", "\n   "))


if __name__ == "__main__":
    main()
