"""Using the library on your own schema and data.

Builds a small movie-rental schema from scratch (catalog, statistics,
indexes, rows), then runs the complete pipeline: SQL over the custom
catalog, plan-space counting, uniform sampling, USEPLAN execution, and a
plan-equivalence validation sweep.

Run:  python examples/custom_catalog.py
"""

import random

from repro import Catalog, Database, Session
from repro.catalog import Column, ColumnStats, ColumnType, Index, TableSchema, TableStats
from repro.optimizer import OptimizerOptions
from repro.storage import DataTable
from repro.testing import PlanValidator

INT = ColumnType.INTEGER
STR = ColumnType.STRING
FLT = ColumnType.FLOAT


def build_database() -> Database:
    catalog = Catalog()

    films = TableSchema(
        name="films",
        columns=(
            Column("film_id", INT),
            Column("title", STR),
            Column("genre", STR),
            Column("rental_rate", FLT),
        ),
        primary_key=("film_id",),
        indexes=(
            Index("films_pk", "films", ("film_id",), unique=True, clustered=True),
        ),
    )
    stores = TableSchema(
        name="stores",
        columns=(Column("store_id", INT), Column("city", STR)),
        primary_key=("store_id",),
        indexes=(
            Index("stores_pk", "stores", ("store_id",), unique=True, clustered=True),
        ),
    )
    rentals = TableSchema(
        name="rentals",
        columns=(
            Column("rental_id", INT),
            Column("film_id", INT),
            Column("store_id", INT),
            Column("amount", FLT),
        ),
        primary_key=("rental_id",),
        indexes=(
            Index("rentals_pk", "rentals", ("rental_id",), unique=True, clustered=True),
            Index("rentals_film", "rentals", ("film_id",)),
            Index("rentals_store", "rentals", ("store_id",)),
        ),
    )

    n_films, n_stores, n_rentals = 40, 6, 400
    catalog.add_table(
        films,
        TableStats(
            row_count=n_films,
            columns={
                "film_id": ColumnStats(distinct=n_films, lo=1, hi=n_films),
                "genre": ColumnStats(distinct=5),
            },
        ),
    )
    catalog.add_table(
        stores,
        TableStats(
            row_count=n_stores,
            columns={"store_id": ColumnStats(distinct=n_stores, lo=1, hi=n_stores)},
        ),
    )
    catalog.add_table(
        rentals,
        TableStats(
            row_count=n_rentals,
            columns={
                "rental_id": ColumnStats(distinct=n_rentals, lo=1, hi=n_rentals),
                "film_id": ColumnStats(distinct=n_films, lo=1, hi=n_films),
                "store_id": ColumnStats(distinct=n_stores, lo=1, hi=n_stores),
            },
        ),
    )

    rng = random.Random(7)
    genres = ["action", "comedy", "drama", "horror", "sci-fi"]
    database = Database(catalog=catalog)
    database.add_table(
        DataTable(
            films,
            [
                (i, f"Film {i}", rng.choice(genres), round(rng.uniform(0.99, 4.99), 2))
                for i in range(1, n_films + 1)
            ],
        )
    )
    database.add_table(
        DataTable(
            stores,
            [(i, f"City {i}") for i in range(1, n_stores + 1)],
        )
    )
    database.add_table(
        DataTable(
            rentals,
            [
                (
                    i,
                    rng.randint(1, n_films),
                    rng.randint(1, n_stores),
                    round(rng.uniform(0.99, 9.99), 2),
                )
                for i in range(1, n_rentals + 1)
            ],
        )
    )
    return database


def main() -> None:
    database = build_database()
    session = Session(database, OptimizerOptions(allow_cross_products=False))

    sql = """
    SELECT s.city, SUM(r.amount) AS revenue
    FROM rentals r, films f, stores s
    WHERE r.film_id = f.film_id
      AND r.store_id = s.store_id
      AND f.genre = 'sci-fi'
    GROUP BY s.city
    """
    print("Query:\n", sql)

    space = session.plan_space(sql)
    print(f"plan space: {space.count():,} plans")
    print("\noptimizer's plan:")
    print(session.explain(sql))

    print("\nexecution via OPTION (USEPLAN 100):")
    result = session.execute(sql.strip() + " OPTION (USEPLAN 100)")
    print(result.render())

    print("\nvalidating 80 uniformly sampled plans...")
    validator = PlanValidator(database, session.options)
    report = validator.validate_sql(sql, max_exhaustive=200, sample_size=80)
    print(report.render())


if __name__ == "__main__":
    main()
