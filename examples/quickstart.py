"""Quickstart: count, enumerate, sample, and force execution plans.

Runs the full pipeline of the paper on TPC-H Q3 against the bundled micro
database:

1. optimize and open the plan space;
2. count the space exactly (Section 3.2);
3. unrank plan number 8 and rank it back (Section 3.3);
4. draw a uniform sample (Section 1's testing mechanism);
5. execute a specific plan with ``OPTION (USEPLAN 8)`` (Section 4).

Run:  python examples/quickstart.py
"""

from repro import Session
from repro.optimizer import OptimizerOptions
from repro.workloads import tpch_query


def main() -> None:
    session = Session.tpch(
        seed=0, options=OptimizerOptions(allow_cross_products=False)
    )
    sql = tpch_query("Q3").sql
    print("Query:\n", sql)

    # 1-2. Optimize and count.
    space = session.plan_space(sql)
    total = space.count()
    print(f"\nThe optimizer's memo encodes N = {total:,} execution plans.")

    # 3. Unranking: plan number 8, and back again.
    plan = space.unrank(8)
    print("\nPlan number 8:")
    print(plan.render())
    print("rank(unrank(8)) =", space.rank(plan))

    # 4. Uniform sampling.
    sample = space.sample(5, seed=42)
    print("\nFive uniformly sampled plans (by shape):")
    for sampled in sample:
        ops = " -> ".join(node.op.name for node in sampled.iter_nodes())
        print("  ", ops)

    # 5. The SQL extension: execute exactly plan 8.
    result = session.execute(f"{sql.strip()} OPTION (USEPLAN 8)")
    print(f"\nOPTION (USEPLAN 8) returned {len(result.rows)} rows:")
    print(result.render(limit=5))

    # The optimizer's own choice returns the same answer.
    default = session.execute(sql)
    print(f"\nOptimizer's plan returned {len(default.rows)} rows — same result.")

    # 6. Counting-only workloads: skip the physical memo entirely.  The
    # implicit engine computes the same N, the same plans (identical
    # memo ids), and the same seeded samples — without materializing a
    # single physical expression (see planspace/implicit/README.md).
    handle = session.plan_space(sql, count_only=True)
    assert handle.count() == total
    assert handle.unrank(8).render() == plan.render()
    print(f"\nImplicit (count-only) space agrees: N = {handle.count():,}")


if __name__ == "__main__":
    main()
