"""The paper's running example, end to end (Figures 1-3 + appendix).

Rebuilds the Figure 2 memo for ``(A JOIN B) JOIN C``, prints it, shows
the materialized links and per-operator plan counts of Figure 3, replays
the appendix's unranking of plan number 13 with a full R/s-recurrence
trace, and finally executes all 44 plans to confirm they agree.

Run:  python examples/memo_walkthrough.py
"""

from repro.executor import execute_plan
from repro.planspace import PlanSpace
from repro.testing import canonical_result
from repro.workloads.paper_example import EXPECTED_COUNTS, build_paper_example


def main() -> None:
    example = build_paper_example()
    memo = example.memo

    print("=== Figure 2: the memo ===")
    print(memo.render())

    space = PlanSpace.from_memo(memo)
    print("\n=== Figure 3: materialized links and counts N(v) ===")
    ours_to_paper = {v: k for k, v in example.paper_ids.items()}
    for op_id, count in sorted(space.operator_counts().items()):
        paper_id = ours_to_paper.get(op_id, "-")
        expected = EXPECTED_COUNTS.get(paper_id, "-")
        print(f"  operator {op_id} (paper {paper_id}): N = {count} "
              f"(paper annotates {expected})")
    print(f"  total plans N = {space.count()}")

    print("\n=== Appendix: unranking plan number 13 ===")
    plan, trace = space.unrank_with_trace(13)
    print(trace.render())
    print("\nresulting plan:")
    print(plan.render())
    print("operators (paper ids):",
          ", ".join(ours_to_paper[i] for i in plan.operator_ids()))
    print("rank(plan) =", space.rank(plan))

    print("\n=== Section 4: executing all 44 plans ===")
    reference = None
    for rank, candidate in space.enumerate():
        result = execute_plan(candidate, example.database)
        canon = canonical_result(result.columns, result.rows)
        if reference is None:
            reference = canon
        assert canon == reference, f"plan {rank} differs!"
    print(f"all {space.count()} plans returned identical results "
          f"({len(reference[1])} rows each)")


if __name__ == "__main__":
    main()
