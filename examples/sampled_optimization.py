"""Sampled optimization of clique12, end to end.

The clique12 no-cross memo holds ~2.9M physical expressions and takes
~4.4 minutes to optimize (and ~35 minutes to count materialized).  The
sampling-driven path — implicit count, stratified best-of-k, fragment
recombination — returns a fully costed, executable plan in seconds, plus
the cost-distribution analytics of the space it searched.

Run:  PYTHONPATH=src python examples/sampled_optimization.py [n]
(defaults to n=10 so the true optimum is also computed for comparison;
pass 12 for the headline scale, where only the sampled path runs)
"""

import sys
import time

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.sampledopt import (
    SampledOptimizer,
    distribution_report,
    sampled_distribution,
)
from repro.workloads.synthetic import clique_query


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    workload = clique_query(n, rows=5, seed=0)
    options = OptimizerOptions()

    print(f"=== sampled optimization of {workload.name} (no cross products) ===")
    start = time.perf_counter()
    result = SampledOptimizer(workload.catalog, options).optimize_sql(
        workload.sql, seed=0
    )
    elapsed = time.perf_counter() - start
    print(result.describe())
    print(f"({elapsed:.2f}s wall clock, N = {result.total_plans:.3e} plans)")
    print()
    print("anytime trajectory (samples -> recombined incumbent):")
    for point in result.history:
        print(
            f"  {point.samples:>4} samples  {point.elapsed_s:>6.2f}s  "
            f"best sampled {point.best_sampled_cost:>10.1f}  "
            f"recombined {point.best_cost:>10.1f}"
        )
    print()
    print(result.explain())

    if n <= 10:
        print()
        print("=== the materialized optimum, for comparison ===")
        start = time.perf_counter()
        optimum = Optimizer(workload.catalog, options).optimize_sql(workload.sql)
        print(
            f"optimum {optimum.best_cost:,.1f} in "
            f"{time.perf_counter() - start:.2f}s -> sampled plan is "
            f"{result.best_cost / optimum.best_cost:.2f}x the optimum"
        )

    print()
    print("=== memo-free cost-distribution analytics ===")
    dist = sampled_distribution(
        workload.catalog,
        workload.sql,
        workload.name,
        sample_size=200,
        seed=0,
        options=options,
        stratified=True,
        scale_to=result.best_cost,
    )
    print(distribution_report(dist))


if __name__ == "__main__":
    main()
