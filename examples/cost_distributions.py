"""Section 5 in action: cost distributions of real search spaces.

Uniformly samples the plan space of TPC-H Q5 (with and without Cartesian
products), prints a Table 1-style summary row, and renders the Figure 4
zoom-in histogram of the lower 50% of scaled costs.

Run:  python examples/cost_distributions.py  [sample_size]
"""

import sys

from repro import tpch_catalog
from repro.experiments import (
    figure4_histogram,
    render_table1,
    sample_cost_distribution,
)
from repro.workloads import tpch_query


def main() -> None:
    sample_size = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    catalog = tpch_catalog(scale_factor=1.0)
    query = tpch_query("Q5")

    distributions = []
    for cross in (False, True):
        label = "with" if cross else "no"
        print(f"Sampling {sample_size} plans from Q5 ({label} cross products)...")
        dist = sample_cost_distribution(
            catalog,
            query.sql,
            query_name="Q5",
            allow_cross_products=cross,
            sample_size=sample_size,
            seed=0,
        )
        distributions.append(dist)
        print("  ", dist.describe())

    print("\nTable 1 style summary (measured vs paper):")
    print(render_table1(distributions))

    print("\nFigure 4 style histogram (no cross products):")
    print(figure4_histogram(distributions[0], bins=20, width=44).render())
    shape = distributions[0].gamma_shape()
    print(
        f"\nFitted gamma shape: {shape:.3f} "
        "(the paper observes ~1: exponential-like decay)"
    )


if __name__ == "__main__":
    main()
