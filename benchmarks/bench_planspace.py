"""Plan-space engine benchmark: implicit vs materialized, across topologies.

Times, for chain/star/clique/cycle joins of n in {6, 8, 10, 12} in both
cross-product modes and for both engines:

* ``count_s`` — everything from SQL to the exact space total ``N``
  (materialized: optimize + link materialization + counting; implicit:
  layout simulation + analytic counting);
* ``sample_s`` — drawing and unranking 100 uniform plans (seed 0) from
  the already-counted space.

Writes ``BENCH_planspace.json`` at the repository root — the perf
trajectory future plan-space PRs compare against.  Run directly::

    PYTHONPATH=src python benchmarks/bench_planspace.py
    PYTHONPATH=src python benchmarks/bench_planspace.py --full

By default the *materialized* engine skips the cells whose memos take
minutes to build (no-cross clique above n=10, every cross-product cell
above n=10): the implicit engine is the point of those cells — e.g.
clique12 no-cross counts implicitly in seconds against ~4.5 minutes of
memo construction.  ``--full`` lifts the materialized caps.  Both engines
draw ranks through the shared RNG contract, so the 100 sampled plans of a
cell are the *same plans* in both rows.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.implicit import ImplicitPlanSpace
from repro.planspace.space import PlanSpace
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
)

WORKLOADS = {
    "chain": chain_query,
    "star": star_query,
    "clique": clique_query,
    "cycle": cycle_query,
}

DEFAULT_SIZES = (6, 8, 10, 12)
SAMPLE_SIZE = 100
#: materialized-engine caps (see module docstring); implicit runs all cells
MAT_NOCROSS_CLIQUE_CAP = 10
MAT_CROSS_CAP = 10


def run_cell(shape: str, n: int, cross: bool, engine: str, repeat: int) -> dict:
    workload = WORKLOADS[shape](n, rows=5, seed=0)
    options = OptimizerOptions(allow_cross_products=cross)
    best_count = best_sample = float("inf")
    record: dict = {
        "workload": shape,
        "n": n,
        "cross": cross,
        "engine": engine,
    }
    for _ in range(repeat):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            if engine == "implicit":
                space = ImplicitPlanSpace.from_sql(
                    workload.catalog, workload.sql, options=options
                )
                total = space.count()
                count_s = time.perf_counter() - start
                record["groups"] = space.group_count()
                record["physical_ops"] = space.physical_operator_count()
            else:
                bound = Binder(workload.catalog).bind(parse(workload.sql))
                result = Optimizer(workload.catalog, options).optimize(bound)
                space = PlanSpace.from_result(result)
                total = space.count()
                count_s = time.perf_counter() - start
                record["groups"] = len(result.memo.groups)
                record["physical_ops"] = result.memo.physical_expression_count()
            start = time.perf_counter()
            plans = space.sample(SAMPLE_SIZE, seed=0)
            sample_s = time.perf_counter() - start
        finally:
            gc.enable()
        assert len(plans) == SAMPLE_SIZE
        best_count = min(best_count, count_s)
        best_sample = min(best_sample, sample_s)
    record["count_s"] = round(best_count, 4)
    record["sample_s"] = round(best_sample, 4)
    record["plans"] = total
    return record


def materialized_skipped(shape: str, n: int, cross: bool, full: bool) -> bool:
    if full:
        return False
    if cross and n > MAT_CROSS_CAP:
        return True
    return not cross and shape == "clique" and n > MAT_NOCROSS_CLIQUE_CAP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="runs per cell (best is kept)"
    )
    parser.add_argument(
        "--full", action="store_true", help="lift the materialized-engine caps"
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        default=list(WORKLOADS),
        help="restrict to these topologies",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update matching cells of an existing output file instead of "
        "rewriting it (incremental regeneration of expensive cells)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_planspace.json",
    )
    args = parser.parse_args(argv)

    try:  # the turbo path's one-time numpy import is process-level state,
        import numpy  # noqa: F401  # not a per-cell cost: warm it up front
    except ImportError:
        pass

    records = []
    for shape in args.workloads:
        for n in args.sizes:
            for cross in (False, True):
                for engine in ("implicit", "materialized"):
                    if engine == "materialized" and materialized_skipped(
                        shape, n, cross, args.full
                    ):
                        print(
                            f"skip {shape} n={n} cross={'on' if cross else 'off'}"
                            f" materialized (pass --full to include)",
                            flush=True,
                        )
                        continue
                    record = run_cell(shape, n, cross, engine, args.repeat)
                    records.append(record)
                    print(
                        f"{shape:>6} n={n:>2} cross={'on ' if cross else 'off'} "
                        f"{engine:>12} count={record['count_s']:>9.4f}s "
                        f"sample{SAMPLE_SIZE}={record['sample_s']:>8.4f}s "
                        f"ops={record['physical_ops']:>8}",
                        flush=True,
                    )

    if args.merge and args.output.exists():
        key = lambda r: (r["workload"], r["n"], r["cross"], r["engine"])
        merged = {key(r): r for r in json.loads(args.output.read_text())}
        merged.update({key(r): r for r in records})
        records = list(merged.values())
    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.output} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
