"""Plan-serving throughput benchmark: cold vs warm, across client counts.

For each workload cell and each client count (1/8/64 by default), fires
``--requests`` literal-variant statements of one template at a
:class:`repro.serving.PlanServer` twice:

* **cold** — a fresh server with an empty cache, every distinct literal
  optimized from scratch (requests cycle over ``--variants`` literals,
  so most requests still warm-hit within the run; the *first* touch of
  each variant pays full price);
* **warm** — the same server again, cache fully populated: every
  request is a plan-tier hit.

Records carry QPS and p50/p99 latency per (clients, phase), written to
``BENCH_serving.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --merge
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.serving import PlanServer
from repro.workloads.synthetic import clique_query, star_query

WORKLOADS = {"star": star_query, "clique": clique_query}
DEFAULT_CELLS = ("star8", "clique8")
DEFAULT_CLIENTS = (1, 8, 64)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _variants(sql: str, count: int) -> list[str]:
    """Literal variants of one template: the aggregate-free synthetic
    statements end in an equality join predicate, so appending a range
    predicate on the first table parameterizes them."""
    return [f"{sql} AND t0.val < {1000 + i}" for i in range(count)]


def _drive(server: PlanServer, statements: list[str], requests: int) -> dict:
    latencies: list[float] = []
    started = time.perf_counter()
    futures = []
    for i in range(requests):
        sql = statements[i % len(statements)]
        submitted = time.perf_counter()
        futures.append((submitted, server.submit(sql)))
    for submitted, future in futures:
        future.result()
        latencies.append(time.perf_counter() - submitted)
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "elapsed_s": round(elapsed, 4),
        "qps": round(requests / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000.0, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000.0, 3),
    }


def bench_cell(
    shape: str, n: int, clients: list[int], requests: int, variants: int
) -> list[dict]:
    workload = WORKLOADS[shape](n, rows=5, seed=0, aggregate=False)
    statements = _variants(workload.sql, variants)
    records = []
    for workers in clients:
        with PlanServer(workload.database, workers=workers) as server:
            cold = _drive(server, statements, requests)
            warm = _drive(server, statements, requests)
            stats = server.stats()
        for phase, numbers in (("cold", cold), ("warm", warm)):
            records.append(
                {
                    "workload": shape,
                    "n": n,
                    "clients": workers,
                    "phase": phase,
                    "requests": requests,
                    "variants": variants,
                    **numbers,
                }
            )
        records[-1]["cache"] = {
            k: stats["cache"][k]
            for k in ("plan.hits", "plan.misses", "template.hits")
        }
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cells",
        nargs="+",
        default=list(DEFAULT_CELLS),
        help="workload cells as <shape><n>, e.g. star8 clique8",
    )
    parser.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=list(DEFAULT_CLIENTS),
        help="client counts to sweep (default: 1 8 64)",
    )
    parser.add_argument("--requests", type=int, default=96)
    parser.add_argument(
        "--variants",
        type=int,
        default=8,
        help="distinct literal variants of the template per cell",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update matching cells of an existing output file instead of "
        "rewriting it",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_serving.json",
    )
    args = parser.parse_args(argv)

    records = []
    for cell in args.cells:
        shape = cell.rstrip("0123456789")
        n = int(cell[len(shape):])
        if shape not in WORKLOADS:
            raise SystemExit(f"unknown workload shape {shape!r}")
        for record in bench_cell(
            shape, n, args.clients, args.requests, args.variants
        ):
            records.append(record)
            print(
                f"{cell:>9} clients={record['clients']:<3} "
                f"{record['phase']:<4} {record['qps']:>9,.1f} qps  "
                f"p50 {record['p50_ms']:>8.2f}ms  "
                f"p99 {record['p99_ms']:>8.2f}ms",
                flush=True,
            )

    if args.merge and args.output.exists():
        key = lambda r: (r["workload"], r["n"], r["clients"], r["phase"])
        merged = {key(r): r for r in json.loads(args.output.read_text())}
        merged.update({key(r): r for r in records})
        records = list(merged.values())
    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.output} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
