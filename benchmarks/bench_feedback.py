"""Feedback benchmark: chosen-plan quality over repeated executions.

Every scenario plans against deliberately corrupted catalog statistics
(:mod:`repro.workloads.misestimated`) while executing against the true
data, and repeats the adaptive loop: optimize with the session ledger,
execute the chosen plan instrumented, fold the observed cardinalities
back in.  The figure of merit per iteration is the **cost factor** —
the chosen plan's cost under *true* cardinalities (the oracle ledger of
:func:`repro.obs.true_cardinality_ledger`) divided by the optimum under
true cardinalities — so 1.0 means the optimizer found the genuinely
best plan, and the trajectory shows estimation feedback converging:
iteration 1 is the static-estimate pick (the mispick), later iterations
re-cost under accumulated observations.

Records are written to ``BENCH_feedback.json``; ``scripts/ci.sh``'s
feedback smoke asserts the trajectory never worsens.  Run directly::

    PYTHONPATH=src python benchmarks/bench_feedback.py
    PYTHONPATH=src python benchmarks/bench_feedback.py --merge
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.api import Session
from repro.obs.feedback import plan_cost_under_ledger, true_cardinality_ledger
from repro.workloads.misestimated import (
    misestimated_chain,
    misestimated_star,
    misestimated_tpch,
)
from repro.workloads.tpch_queries import TPCH_QUERIES


def _scenario(name: str, seed: int):
    """``(database, sql)`` for one named scenario."""
    if name.startswith("tpch-"):
        database = misestimated_tpch(seed=seed)
        return database, TPCH_QUERIES[name[len("tpch-"):]].sql
    if name.startswith("chain"):
        workload = misestimated_chain(int(name[len("chain"):]), seed=seed)
        return workload.database, workload.sql
    if name.startswith("star"):
        workload = misestimated_star(int(name[len("star"):]), seed=seed)
        return workload.database, workload.sql
    raise SystemExit(f"unknown scenario {name!r}")


#: scenarios where seed-0 corruption mispicks.  The severity spans four
#: orders of magnitude — tpch-Q3 starts 18x off the true optimum,
#: tpch-Q5 a hair (1.0001x) — and both ends must converge without ever
#: worsening.
DEFAULT_SCENARIOS = ("chain5", "star5", "tpch-Q3", "tpch-Q5")


def bench_scenario(name: str, seed: int, iterations: int) -> dict:
    database, sql = _scenario(name, seed)
    session = Session(database)

    # The oracle: true cardinality of every join-level memo group, and
    # the best achievable cost under that assignment (an exact search
    # fed the oracle minimizes exactly it).
    base = session.optimize(sql)
    oracle = true_cardinality_ledger(base, database)
    binding = oracle.binding(base.graph.universe.order)
    oracle_result = session.optimize(sql, feedback=oracle)
    optimum = plan_cost_under_ledger(
        oracle_result.best_plan,
        oracle_result.memo,
        binding,
        oracle_result.cost_model,
    )

    factors = []
    substituted = []
    for _ in range(iterations):
        result = session.optimize(sql, feedback=True)
        true_cost = plan_cost_under_ledger(
            result.best_plan, result.memo, binding, result.cost_model
        )
        factors.append(round(true_cost / optimum, 4))
        substituted.append(
            result.feedback.substituted if result.feedback is not None else 0
        )
        stats = session.executor.execute(
            result.best_plan, collect_stats=True
        ).stats
        session.ledger.record_execution(
            stats, result.memo, result.graph.universe.order
        )

    return {
        "scenario": name,
        "seed": seed,
        "iterations": iterations,
        "optimum_true_cost": round(optimum, 1),
        "cost_factors": factors,
        "substituted": substituted,
        "initial_mispick": factors[0] > 1.0 + 1e-9,
        "monotone_non_worsening": all(
            b <= a + 1e-9 for a, b in zip(factors, factors[1:])
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", nargs="+", default=list(DEFAULT_SCENARIOS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--iterations",
        type=int,
        default=4,
        help="adaptive optimize/execute/observe rounds per scenario",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update matching scenarios of an existing output file instead "
        "of rewriting it",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_feedback.json",
    )
    args = parser.parse_args(argv)

    records = []
    for name in args.scenarios:
        record = bench_scenario(name, args.seed, args.iterations)
        records.append(record)
        trajectory = " -> ".join(f"{f:.3f}x" for f in record["cost_factors"])
        tag = "mispick" if record["initial_mispick"] else "control"
        mono = "monotone" if record["monotone_non_worsening"] else "OSCILLATES"
        print(f"{name:>8} [{tag}] {trajectory} ({mono})", flush=True)

    if args.merge and args.output.exists():
        key = lambda r: (r["scenario"], r["seed"])
        merged = {key(r): r for r in json.loads(args.output.read_text())}
        merged.update({key(r): r for r in records})
        records = list(merged.values())
    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.output} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
