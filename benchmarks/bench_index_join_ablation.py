"""Experiment E12 (ablation) — index-lookup joins widen the plan space.

The paper lists "index utilization" among the dimensions that make the
real plan space irregular.  This ablation enables the
IndexNestedLoopJoin implementation rule and measures how the counted
space grows per query, and whether the optimizer's best cost improves
(it can: index seeks beat full scans for selective outers).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.optimizer.implementation import ImplementationConfig
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.workloads.tpch_queries import tpch_query

_ROWS = []


def _space(catalog, name, enable):
    options = OptimizerOptions(
        allow_cross_products=False,
        implementation=ImplementationConfig(enable_index_nl_join=enable),
    )
    result = Optimizer(catalog, options).optimize_sql(tpch_query(name).sql)
    return PlanSpace.from_result(result).count(), result.best_cost


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q9"])
def test_index_join_growth(benchmark, catalog, name):
    def run():
        baseline_count, baseline_best = _space(catalog, name, enable=False)
        inlj_count, inlj_best = _space(catalog, name, enable=True)
        return baseline_count, baseline_best, inlj_count, inlj_best

    baseline_count, baseline_best, inlj_count, inlj_best = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _ROWS.append((name, baseline_count, inlj_count, baseline_best, inlj_best))
    assert inlj_count > baseline_count
    # Extra implementations can only improve (or match) the optimum.
    assert inlj_best <= baseline_best * (1 + 1e-9)


def test_index_join_report(benchmark):
    def noop():
        return len(_ROWS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Index-join ablation (E12): space growth and best-cost effect",
        f"{'query':>6}  {'plans (scans only)':>20}  {'plans (+index join)':>20}  "
        f"{'growth':>7}  {'best cost delta':>15}",
    ]
    for name, base, inlj, base_best, inlj_best in _ROWS:
        growth = inlj / base
        delta = (inlj_best - base_best) / base_best
        lines.append(
            f"{name:>6}  {base:>20,}  {inlj:>20,}  {growth:>6.1f}x  {delta:>14.2%}"
        )
    write_report("index_join_ablation.txt", "\n".join(lines))
