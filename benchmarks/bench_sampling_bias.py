"""Experiment E10 (ablation) — uniform unranking vs naive random walk.

The paper's motivation for rank-based sampling: a top-down random walk
over the memo (uniform choice at every step) is *not* uniform over plans.
We quantify the bias with a chi-square statistic over the paper-example
space (44 plans, fully enumerable) and show the unranking sampler passes
where the walk fails by orders of magnitude.
"""

from __future__ import annotations

from collections import Counter

from benchmarks.conftest import write_report
from repro.planspace.links import materialize_links
from repro.planspace.sampling import UniformPlanSampler, naive_walk_sample
from repro.planspace.unranking import Unranker
from repro.workloads.paper_example import build_paper_example

_STATS = {}

#: chi-square 99.9% critical value for 43 degrees of freedom.
CHI2_CRITICAL = 77.4
DRAWS_PER_PLAN = 250


def _chi_square(counts: Counter, total_plans: int, draws: int) -> float:
    expected = draws / total_plans
    return sum(
        (counts.get(rank, 0) - expected) ** 2 / expected
        for rank in range(total_plans)
    )


def test_uniform_sampler_unbiased(benchmark):
    example = build_paper_example()
    space = materialize_links(example.memo)
    sampler = UniformPlanSampler(space, seed=123)
    total = Unranker(space).total
    draws = total * DRAWS_PER_PLAN

    def sample_and_score():
        counts = Counter(sampler.sample_rank() for _ in range(draws))
        return _chi_square(counts, total, draws)

    chi2 = benchmark.pedantic(sample_and_score, rounds=1, iterations=1)
    _STATS["uniform (unranking)"] = chi2
    assert chi2 < CHI2_CRITICAL


def test_naive_walk_biased(benchmark):
    example = build_paper_example()
    space = materialize_links(example.memo)
    unranker = Unranker(space)
    total = unranker.total
    draws = total * DRAWS_PER_PLAN

    def sample_and_score():
        plans = naive_walk_sample(space, draws, seed=123)
        counts = Counter(unranker.rank(plan) for plan in plans)
        return _chi_square(counts, total, draws)

    chi2 = benchmark.pedantic(sample_and_score, rounds=1, iterations=1)
    _STATS["naive random walk"] = chi2
    assert chi2 > CHI2_CRITICAL


def test_bias_report(benchmark):
    def noop():
        return len(_STATS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Sampling bias ablation (E10) over the 44-plan paper example",
        f"({DRAWS_PER_PLAN} draws per plan; chi-square, 43 dof, "
        f"99.9% critical value {CHI2_CRITICAL}):",
        "",
    ]
    for label, chi2 in _STATS.items():
        verdict = "uniform" if chi2 < CHI2_CRITICAL else "BIASED"
        lines.append(f"  {label:>22}: chi2 = {chi2:>10.1f}  -> {verdict}")
    lines.append(
        "\nThe walk over-samples plans in sparse memo regions; rank-based "
        "sampling is provably uniform."
    )
    write_report("sampling_bias.txt", "\n".join(lines))
