"""Experiment E1 — reproduce the paper's **Table 1**.

For TPC-H Q5/Q7/Q8/Q9, with and without Cartesian products: exact plan
count, min/mean/max sampled scaled cost, and the fraction of plans within
2x and 10x of the optimum.  The rendered table (measured rows interleaved
with the paper's) is written to ``benchmarks/output/table1.txt``.

The benchmark clock measures the complete per-query experiment: optimize,
materialize links, count, draw the uniform sample, cost every plan.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_size, write_report
from repro.experiments.distributions import sample_cost_distribution
from repro.experiments.table1 import PAPER_TABLE1, render_table1
from repro.workloads.tpch_queries import tpch_query

_QUERIES = ("Q5", "Q7", "Q8", "Q9")
_RESULTS: dict[tuple[str, bool], object] = {}


def _run_one(catalog, name: str, cross: bool):
    dist = sample_cost_distribution(
        catalog,
        tpch_query(name).sql,
        query_name=name,
        allow_cross_products=cross,
        sample_size=sample_size(),
        seed=0,
    )
    _RESULTS[(name, cross)] = dist
    return dist


@pytest.mark.parametrize("name", _QUERIES)
def test_table1_no_cross_products(benchmark, catalog, name):
    dist = benchmark.pedantic(
        _run_one, args=(catalog, name, False), rounds=1, iterations=1
    )
    assert dist.minimum() >= 1.0
    assert dist.total_plans > 1_000_000


@pytest.mark.parametrize("name", _QUERIES)
def test_table1_with_cross_products(benchmark, catalog, name):
    dist = benchmark.pedantic(
        _run_one, args=(catalog, name, True), rounds=1, iterations=1
    )
    assert dist.minimum() >= 1.0
    paper_no_cross = {
        row.query: row.plans for row in PAPER_TABLE1 if not row.cross_products
    }
    # Qualitative reproduction target: cross products inflate the space.
    no_cross = _RESULTS.get((name, False))
    if no_cross is not None:
        assert dist.total_plans > no_cross.total_plans
    del paper_no_cross


def test_table1_report(benchmark, catalog):
    """Assemble and persist the full table (rows in the paper's order)."""

    def assemble():
        ordered = []
        for cross in (False, True):
            for name in _QUERIES:
                dist = _RESULTS.get((name, cross))
                if dist is None:
                    dist = _run_one(catalog, name, cross)
                ordered.append(dist)
        return ordered

    distributions = benchmark.pedantic(assemble, rounds=1, iterations=1)
    report = render_table1(distributions)
    header = (
        f"Table 1 reproduction — sample of {sample_size()} plans per space\n"
        "(measured row first, the paper's published row below it)\n"
    )
    write_report("table1.txt", header + report)

    by_key = {(d.query_name, d.allow_cross_products): d for d in distributions}
    # Shape checks mirroring the paper's headline observations:
    # Q8 has the largest space in both policies...
    for cross in (False, True):
        counts = {name: by_key[(name, cross)].total_plans for name in _QUERIES}
        assert counts["Q8"] == max(counts.values())
    # ... a non-trivial fraction of plans lies within 10x of the optimum...
    assert any(d.fraction_within(10) > 0.001 for d in distributions)
    # ... and every distribution is heavily right-skewed.
    assert all(d.skewness() > 0 for d in distributions)
