"""Observability overhead benchmark: traced vs untraced optimization.

Two families of records, written to ``BENCH_observability.json``:

* ``disabled_overhead`` — the same exact optimization through
  ``Session.optimize`` with instrumentation off versus the bare
  ``Optimizer`` call.  The delta is the price every ordinary
  (untraced) call pays for the observability layer existing at all —
  the ≤2% guarantee ``scripts/ci.sh`` enforces.
* ``traced_overhead`` — ``Session.optimize(trace=True)`` versus the
  untraced session call: what turning tracing *on* costs (spans per
  phase plus metrics fed from every checkpoint poll).

Both report best-of-``--repeat`` wall times — the stable estimator for
sub-second runs.  Run directly::

    PYTHONPATH=src python benchmarks/bench_observability.py
    PYTHONPATH=src python benchmarks/bench_observability.py --merge
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

from repro.api import Session
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.workloads.synthetic import clique_query, star_query

WORKLOADS = {"star": star_query, "clique": clique_query}
DEFAULT_CELLS = (("star", 12), ("clique", 10))


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_cell(shape: str, n: int, repeat: int) -> list[dict]:
    workload = WORKLOADS[shape](n, rows=5, seed=0)
    options = OptimizerOptions(allow_cross_products=False)
    session = Session(workload.database, options=options)
    sql = workload.sql

    bare_s = _best_of(
        lambda: Optimizer(workload.catalog, options).optimize_sql(sql), repeat
    )
    untraced_s = _best_of(lambda: session.optimize(sql), repeat)
    traced_s = _best_of(lambda: session.optimize(sql, trace=True), repeat)

    return [
        {
            "mode": "disabled_overhead",
            "workload": shape,
            "n": n,
            "bare_s": round(bare_s, 4),
            "session_s": round(untraced_s, 4),
            "overhead_pct": round(100.0 * (untraced_s / bare_s - 1.0), 2),
        },
        {
            "mode": "traced_overhead",
            "workload": shape,
            "n": n,
            "untraced_s": round(untraced_s, 4),
            "traced_s": round(traced_s, 4),
            "overhead_pct": round(100.0 * (traced_s / untraced_s - 1.0), 2),
        },
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cells",
        nargs="+",
        default=[f"{shape}{n}" for shape, n in DEFAULT_CELLS],
        help="workload cells as <shape><n>, e.g. star12 clique10",
    )
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update matching cells of an existing output file instead of "
        "rewriting it",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_observability.json",
    )
    args = parser.parse_args(argv)

    try:  # warm numpy up front: a process-level, not per-cell, cost
        import numpy  # noqa: F401
    except ImportError:
        pass

    records = []
    for cell in args.cells:
        shape = cell.rstrip("0123456789")
        n = int(cell[len(shape):])
        if shape not in WORKLOADS:
            raise SystemExit(f"unknown workload shape {shape!r}")
        for record in bench_cell(shape, n, args.repeat):
            records.append(record)
            if record["mode"] == "disabled_overhead":
                print(
                    f"{cell:>9} disabled: bare {record['bare_s']:.4f}s "
                    f"session {record['session_s']:.4f}s "
                    f"({record['overhead_pct']:+.2f}%)",
                    flush=True,
                )
            else:
                print(
                    f"{cell:>9} traced:   untraced {record['untraced_s']:.4f}s "
                    f"traced {record['traced_s']:.4f}s "
                    f"({record['overhead_pct']:+.2f}%)",
                    flush=True,
                )

    if args.merge and args.output.exists():
        key = lambda r: (r["mode"], r["workload"], r["n"])
        merged = {key(r): r for r in json.loads(args.output.read_text())}
        merged.update({key(r): r for r in records})
        records = list(merged.values())
    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.output} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
