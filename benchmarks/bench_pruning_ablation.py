"""Experiment E11 (ablation) — cost-bound pruning vs the full space.

The paper recommends keeping *every* alternative for testing ("it is
useful to have the optimizer keep each alternative generated").  This
ablation quantifies the trade-off: how many plans survive pruning at
various cost budgets, and that the optimum always survives.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.optimizer.bestplan import find_best_plan
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.optimizer.pruning import prune_memo
from repro.planspace.space import PlanSpace
from repro.workloads.tpch_queries import tpch_query

_ROWS = []


def _fresh(catalog, name="Q5"):
    return Optimizer(
        catalog, OptimizerOptions(allow_cross_products=False)
    ).optimize_sql(tpch_query(name).sql)


@pytest.mark.parametrize("factor", [1.0, 1.5, 2.0, 5.0, 20.0])
def test_pruning_factor_sweep(benchmark, catalog, factor):
    def run():
        result = _fresh(catalog)
        full = PlanSpace.from_result(result).count()
        removed = prune_memo(result.memo, result.cost_model, factor=factor)
        pruned = PlanSpace.from_result(result).count()
        _, best_after = find_best_plan(
            result.memo, result.cost_model, result.root_order
        )
        return full, pruned, removed, result.best_cost, best_after

    full, pruned, removed, best_before, best_after = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _ROWS.append((factor, full, pruned, removed))
    assert pruned <= full
    assert best_after == pytest.approx(best_before)
    if factor <= 1.5:
        assert pruned < full / 100  # tight budgets decimate the space


def test_pruning_report(benchmark):
    def noop():
        return len(_ROWS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Pruning ablation (E11) on TPC-H Q5 (no cross products):",
        f"{'factor':>7}  {'full space':>18}  {'pruned space':>18}  {'ops removed':>11}",
    ]
    for factor, full, pruned, removed in sorted(_ROWS):
        lines.append(
            f"{factor:>7.1f}  {full:>18,}  {pruned:>18,}  {removed:>11}"
        )
    lines.append(
        "\nThe optimizer's best plan survives every budget; the testing "
        "surface collapses, which is why the paper disables pruning when "
        "validating."
    )
    write_report("pruning_ablation.txt", "\n".join(lines))
