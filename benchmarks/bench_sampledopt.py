"""Sampled-optimization benchmark: time-to-within-factor trajectories.

For chain/star/clique/cycle joins of n in {8, 10, 12} (no cross
products) this times the memo-free sampled optimizer and records its
anytime trajectory — after every costed batch: cumulative samples,
elapsed wall clock, best pure-sampled cost, and the recombined incumbent
cost.  Where the true optimum is computable in reasonable time (n <= 10)
the materialized optimizer runs too and every trajectory point gains a
``factor`` (cost / optimum), yielding the time-to-within-factor curves.
Since the fused columnar kernel every default size qualifies (clique12
exact optimizes in ~2.5s, down from ~4.4 min on the object path), so
all cells carry factors now.

Writes ``BENCH_sampledopt.json`` at the repository root — the quality/
latency trajectory future sampled-optimization PRs compare against::

    PYTHONPATH=src python benchmarks/bench_sampledopt.py
    PYTHONPATH=src python benchmarks/bench_sampledopt.py --merge --sizes 8
    PYTHONPATH=src python benchmarks/bench_sampledopt.py --full  # optimum at n=12 too

Each record: ``{workload, n, cross, plans, samples, seed, stratified,
sampled_total_s, sampled_cost, best_sampled_cost, trajectory: [{samples,
elapsed_s, best_sampled, recombined[, factor]}], optimum_cost?,
optimize_s?, factor?}``.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.sampledopt import SampledOptimizer
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
)

WORKLOADS = {
    "chain": chain_query,
    "star": star_query,
    "clique": clique_query,
    "cycle": cycle_query,
}

DEFAULT_SIZES = (8, 10, 12)
#: above this n the materialized optimum is skipped by default (since
#: the fused columnar kernel, even clique12 answers in ~2.5s, so the
#: cap now covers every default size)
OPTIMUM_CAP = 12


def run_cell(
    shape: str, n: int, samples: int, seed: int, with_optimum: bool
) -> dict:
    workload = WORKLOADS[shape](n, rows=5, seed=0)
    options = OptimizerOptions()
    record: dict = {"workload": shape, "n": n, "cross": False, "seed": seed}

    gc.collect()
    start = time.perf_counter()
    result = SampledOptimizer(workload.catalog, options).optimize_sql(
        workload.sql, samples=samples, seed=seed
    )
    record["sampled_total_s"] = round(time.perf_counter() - start, 4)
    record["plans"] = result.total_plans
    record["samples"] = result.samples
    record["stratified"] = result.stratified
    record["sampled_cost"] = round(result.best_cost, 2)
    record["best_sampled_cost"] = round(result.best_sampled_cost, 2)
    record["timings"] = {
        phase: round(seconds, 4) for phase, seconds in result.timings.items()
    }
    trajectory = [
        {
            "samples": point.samples,
            "elapsed_s": round(point.elapsed_s, 4),
            "best_sampled": round(point.best_sampled_cost, 2),
            "recombined": round(point.best_cost, 2),
        }
        for point in result.history
    ]

    if with_optimum:
        start = time.perf_counter()
        optimum = Optimizer(workload.catalog, options).optimize_sql(
            workload.sql
        )
        record["optimize_s"] = round(time.perf_counter() - start, 4)
        record["optimum_cost"] = round(optimum.best_cost, 2)
        record["factor"] = round(result.best_cost / optimum.best_cost, 4)
        for point in trajectory:
            point["factor"] = round(point["recombined"] / optimum.best_cost, 4)
    record["trajectory"] = trajectory
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        default=list(WORKLOADS),
        help="restrict to these topologies",
    )
    parser.add_argument(
        "--samples", type=int, default=384, help="sample budget per cell"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--full",
        action="store_true",
        help=f"compute the materialized optimum above n={OPTIMUM_CAP} too",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update matching cells of an existing output file instead of "
        "rewriting it (incremental regeneration of expensive cells)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_sampledopt.json",
    )
    args = parser.parse_args(argv)

    try:  # warm the turbo layer's one-time numpy import up front
        import numpy  # noqa: F401
    except ImportError:
        pass

    records = []
    for shape in args.workloads:
        for n in args.sizes:
            with_optimum = args.full or n <= OPTIMUM_CAP
            record = run_cell(shape, n, args.samples, args.seed, with_optimum)
            records.append(record)
            factor = (
                f"factor={record['factor']:>7.3f}"
                if "factor" in record
                else "factor=      -"
            )
            print(
                f"{shape:>6} n={n:>2} sampled={record['sampled_total_s']:>8.3f}s "
                f"{factor} cost={record['sampled_cost']:>12.1f} "
                f"optimum={record.get('optimize_s', '-')}s",
                flush=True,
            )

    if args.merge and args.output.exists():
        key = lambda r: (r["workload"], r["n"], r["cross"])
        merged = {key(r): r for r in json.loads(args.output.read_text())}
        merged.update({key(r): r for r in records})
        records = list(merged.values())
    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.output} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
