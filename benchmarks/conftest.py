"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Rendered artifacts — the measured Table 1,
the Figure 4 histograms, the unranking trace — are written to
``benchmarks/output/`` and echoed to stdout, so that
``pytest benchmarks/ --benchmark-only`` leaves both timing data and the
reproduced tables/figures behind.

Environment knobs:

* ``REPRO_BENCH_SAMPLES`` — cost-distribution sample size (default 2000;
  the paper used 10000 — set ``REPRO_BENCH_SAMPLES=10000`` for the full
  run, it just takes proportionally longer).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.catalog.tpch import tpch_catalog
from repro.storage.datagen import generate_tpch

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def sample_size() -> int:
    return int(os.environ.get("REPRO_BENCH_SAMPLES", "2000"))


def write_report(name: str, content: str) -> pathlib.Path:
    """Persist a rendered artifact and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(content + "\n")
    print(f"\n=== {name} ===")
    print(content)
    return path


@pytest.fixture(scope="session")
def catalog():
    return tpch_catalog(scale_factor=1.0)


@pytest.fixture(scope="session")
def micro_db():
    return generate_tpch(seed=0)
