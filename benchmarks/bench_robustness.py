"""Robustness benchmark: plan quality vs deadline, and budget overhead.

Two families of records, written to ``BENCH_robustness.json``:

* ``deadline_sweep`` — clique joins (the hostile topology: exact takes
  seconds to minutes) optimized under a sweep of wall-clock deadlines
  through the degradation ladder.  Each record reports which tier
  served, what triggered degradation, the wall time, and the cost ratio
  against the exact optimum — the robustness story in one table: how
  much plan quality a given deadline buys.
* ``overhead`` — the same query optimized unbudgeted and under a
  deadline generous enough never to bite.  The delta is the end-to-end
  price of budget checkpoints on the serving path (expected: a few
  percent at most).

Run directly::

    PYTHONPATH=src python benchmarks/bench_robustness.py
    PYTHONPATH=src python benchmarks/bench_robustness.py --merge
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.resilience import Budget
from repro.resilience.degrade import optimize_resilient
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.workloads.synthetic import clique_query

DEFAULT_SIZES = (10, 12)
DEFAULT_DEADLINES = (0.1, 0.5, 1.0)


def _bound(workload):
    return Binder(workload.catalog).bind(parse(workload.sql))


def exact_baseline(n: int, options) -> tuple[float, float]:
    """Unbudgeted exact optimum and wall time for clique ``n``."""
    workload = clique_query(n, rows=5, seed=0)
    bound = _bound(workload)
    gc.collect()
    start = time.perf_counter()
    result = Optimizer(workload.catalog, options).optimize(bound)
    return result.best_cost, time.perf_counter() - start


def sweep_cell(n: int, deadline_s: float, exact_cost: float, options) -> dict:
    workload = clique_query(n, rows=5, seed=0)
    bound = _bound(workload)
    gc.collect()
    start = time.perf_counter()
    result = optimize_resilient(
        workload.catalog,
        bound,
        options,
        budget=Budget(deadline_s=deadline_s),
    )
    wall = time.perf_counter() - start
    report = result.resilience
    return {
        "mode": "deadline_sweep",
        "workload": "clique",
        "n": n,
        "deadline_s": deadline_s,
        "tier": report.tier,
        "trigger": report.trigger,
        "wall_s": round(wall, 4),
        "best_cost": result.best_cost,
        "cost_ratio": round(result.best_cost / exact_cost, 4),
        "attempts": [a.to_dict() for a in report.attempts],
    }


def overhead_cell(n: int, unbudgeted_s: float, options) -> dict:
    """The same exact run under a never-binding deadline."""
    workload = clique_query(n, rows=5, seed=0)
    bound = _bound(workload)
    gc.collect()
    start = time.perf_counter()
    result = optimize_resilient(
        workload.catalog,
        bound,
        options,
        budget=Budget(deadline_s=3600.0),
    )
    budgeted_s = time.perf_counter() - start
    assert result.resilience.tier == "exact"
    return {
        "mode": "overhead",
        "workload": "clique",
        "n": n,
        "deadline_s": None,
        "unbudgeted_s": round(unbudgeted_s, 4),
        "budgeted_s": round(budgeted_s, 4),
        "overhead_pct": round(100.0 * (budgeted_s / unbudgeted_s - 1.0), 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--deadlines",
        type=float,
        nargs="+",
        default=list(DEFAULT_DEADLINES),
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update matching cells of an existing output file instead of "
        "rewriting it",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_robustness.json",
    )
    args = parser.parse_args(argv)

    try:  # warm numpy up front: a process-level, not per-cell, cost
        import numpy  # noqa: F401
    except ImportError:
        pass

    options = OptimizerOptions(allow_cross_products=False)
    records = []
    for n in args.sizes:
        exact_cost, exact_s = exact_baseline(n, options)
        print(
            f"clique n={n:>2} exact optimum {exact_cost:,.1f} "
            f"in {exact_s:.2f}s",
            flush=True,
        )
        for deadline_s in args.deadlines:
            record = sweep_cell(n, deadline_s, exact_cost, options)
            records.append(record)
            print(
                f"clique n={n:>2} deadline={deadline_s:>5.2f}s "
                f"tier={record['tier']:>9} wall={record['wall_s']:>7.3f}s "
                f"cost_ratio={record['cost_ratio']:>7.4f}",
                flush=True,
            )
        record = overhead_cell(n, exact_s, options)
        records.append(record)
        print(
            f"clique n={n:>2} checkpoint overhead "
            f"{record['overhead_pct']:+.2f}% "
            f"({record['unbudgeted_s']}s -> {record['budgeted_s']}s)",
            flush=True,
        )

    if args.merge and args.output.exists():
        key = lambda r: (r["mode"], r["n"], r["deadline_s"])
        merged = {key(r): r for r in json.loads(args.output.read_text())}
        merged.update({key(r): r for r in records})
        records = list(merged.values())
    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.output} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
