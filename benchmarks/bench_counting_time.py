"""Experiment E5 — counting performance (paper Section 3.2).

"Computing the counts for operators takes linear time on the size of the
MEMO, as each operator has to be visited exactly once.  In practice, the
time needed for counting never exceeded 1 second even for large queries."

We count plan spaces for growing synthetic queries (chains and cliques up
to 8 relations, cross products allowed for the worst case) and for the
TPC-H Table 1 queries, asserting the one-second bound and recording
operators-per-second to exhibit the linear scaling.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_report
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.counting import annotate_counts
from repro.planspace.links import materialize_links
from repro.workloads.synthetic import chain_query, clique_query
from repro.workloads.tpch_queries import tpch_query

_SCALING_ROWS: list[tuple[str, int, int, float]] = []


def _space_for(workload_or_sql, catalog=None, allow_cross=True):
    if catalog is None:
        workload = workload_or_sql
        catalog, sql = workload.catalog, workload.sql
    else:
        sql = workload_or_sql
    result = Optimizer(
        catalog, OptimizerOptions(allow_cross_products=allow_cross)
    ).optimize_sql(sql)
    return materialize_links(result.memo, root_required=result.root_order)


@pytest.mark.parametrize("n_tables", [2, 3, 4, 5, 6, 7, 8])
def test_counting_chain(benchmark, n_tables):
    space = _space_for(chain_query(n_tables, rows=10))

    def count():
        for node in space.operators.values():
            node.count = None
        return annotate_counts(space)

    # One explicitly timed pass for the scaling report, then the
    # benchmark's own statistics.
    started = time.perf_counter()
    total = count()
    elapsed = time.perf_counter() - started
    benchmark(count)
    _SCALING_ROWS.append(
        (f"chain{n_tables}", len(space.operators), total, elapsed)
    )
    assert total > 0
    assert elapsed < 1.0, "Section 3.2: counting never exceeded 1 second"


@pytest.mark.parametrize("n_tables", [3, 4, 5, 6])
def test_counting_clique(benchmark, n_tables):
    space = _space_for(clique_query(n_tables, rows=10))

    def count():
        for node in space.operators.values():
            node.count = None
        return annotate_counts(space)

    total = benchmark(count)
    assert total > 0


@pytest.mark.parametrize("name", ["Q5", "Q7", "Q8", "Q9"])
@pytest.mark.parametrize("cross", [False, True])
def test_counting_tpch_under_one_second(benchmark, catalog, name, cross):
    """The paper's headline bound: counting a production-size query's
    space stays under a second."""
    space = _space_for(tpch_query(name).sql, catalog, allow_cross=cross)

    def count():
        for node in space.operators.values():
            node.count = None
        return annotate_counts(space)

    started = time.perf_counter()
    total = count()
    single_run = time.perf_counter() - started
    benchmark.pedantic(count, rounds=3, iterations=1)
    assert total > 0
    assert single_run < 1.0, (
        f"counting {name} (cross={cross}) took {single_run:.3f}s, "
        "paper reports < 1s"
    )


def test_counting_scaling_report(benchmark):
    def noop():
        return len(_SCALING_ROWS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Counting scaling (Section 3.2: linear in memo size, < 1 s):",
        f"{'query':>8}  {'operators':>9}  {'plans':>24}  {'seconds':>9}",
    ]
    for name, operators, total, elapsed in _SCALING_ROWS:
        lines.append(
            f"{name:>8}  {operators:>9}  {total:>24,}  {elapsed:>9.5f}"
        )
    write_report("counting_scaling.txt", "\n".join(lines))
