"""Experiment E4 — the paper's **appendix example**: unranking plan 13.

The appendix unranks the pair (13, root group) of the Figure 2 memo and
traces the R_v / s_v recurrences.  We replay the identical computation,
assert the recurrence values published in the appendix, and benchmark a
single unrank call (the paper: "unranking takes only a small fraction of
the time needed for counting").
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.planspace.space import PlanSpace
from repro.workloads.paper_example import build_paper_example


def test_appendix_unranking_trace(benchmark):
    example = build_paper_example()
    space = PlanSpace.from_memo(example.memo)

    plan, trace = benchmark(lambda: space.unrank_with_trace(13))

    ours_to_paper = {v: k for k, v in example.paper_ids.items()}
    lines = [
        "Appendix reproduction — unranking (13, root group):",
        "",
        trace.render(),
        "",
        "unranked operators (paper ids): "
        + ", ".join(ours_to_paper[i] for i in plan.operator_ids()),
        "",
        "paper appendix values: root = 7.7 with local rank 13;",
        "R(2) = 13, R(1) = 1; s(2) = 6, s(1) = 1; first child unranks (1, C)",
        "to the second scan operator.",
    ]
    write_report("appendix_unrank13.txt", "\n".join(lines))

    # The appendix's published recurrence values, verified:
    root_step = trace.steps[0]
    assert ours_to_paper[root_step.operator_id] == "7.7"
    assert root_step.local_rank == 13
    assert root_step.remainders == (1, 13)  # R(1) = 1, R(2) = 13
    assert root_step.sub_ranks == (1, 6)  # s(1) = 1, s(2) = 6
    # Child 1 = (1, group C) -> the second scan (paper 4.3).
    assert ours_to_paper[plan.children[0].expr_id] == "4.3"
    # Round trip.
    assert space.rank(plan) == 13


def test_all_44_plans_unrank_and_execute(benchmark, micro_db):
    """Every plan of the example memo is executable and result-equivalent
    (the Section 4 claim on the paper's own example)."""
    from repro.executor.executor import PlanExecutor
    from repro.testing.diff import canonical_result

    example = build_paper_example()
    space = PlanSpace.from_memo(example.memo)
    executor = PlanExecutor(example.database)

    def validate_all():
        reference = None
        for _, plan in space.enumerate():
            result = executor.execute(plan)
            canon = canonical_result(result.columns, result.rows)
            if reference is None:
                reference = canon
            assert canon == reference
        return space.count()

    total = benchmark(validate_all)
    assert total == 44
