"""Experiment E13 (extension) — exact operator participation.

For every physical operator of TPC-H Q5's memo, compute the *exact*
number of plans containing it (top-down context counting, the dual of the
paper's bottom-up N(v)), and cross-validate the uniform sampler: sampled
containment frequencies must match the exact fractions.  This is both a
testing tool (finding never-exercised implementations) and an independent
verification of sampling uniformity on an astronomically large space.
"""

from __future__ import annotations

from collections import Counter

from benchmarks.conftest import write_report
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.participation import participation_counts
from repro.planspace.space import PlanSpace
from repro.workloads.tpch_queries import tpch_query


def _q5_space(catalog):
    result = Optimizer(
        catalog, OptimizerOptions(allow_cross_products=False)
    ).optimize_sql(tpch_query("Q5").sql)
    return PlanSpace.from_result(result)


def test_exact_participation_q5(benchmark, catalog):
    space = _q5_space(catalog)
    counts = benchmark(lambda: participation_counts(space.linked))
    total = space.count()
    assert all(0 <= c <= total for c in counts.values())
    # Fully implemented memo: no dead operators.
    assert all(c > 0 for c in counts.values())


def test_sampler_cross_validation_q5(benchmark, catalog):
    space = _q5_space(catalog)
    exact = participation_counts(space.linked)
    total = space.count()
    sample_size = 2_000

    def sampled_frequencies():
        contained: Counter = Counter()
        for plan in space.sample(sample_size, seed=0):
            for node in plan.iter_nodes():
                contained[node.expr_id] += 1
        return contained

    contained = benchmark.pedantic(sampled_frequencies, rounds=1, iterations=1)

    rows = []
    worst = 0.0
    for op_id, count in sorted(exact.items(), key=lambda kv: kv[1], reverse=True)[:12]:
        expected = count / total
        observed = contained.get(op_id, 0) / sample_size
        stderr = max((expected * (1 - expected) / sample_size) ** 0.5, 1e-9)
        deviation = abs(observed - expected) / stderr
        worst = max(worst, deviation)
        node = space.linked.operators[tuple(int(x) for x in op_id.split("."))]
        rows.append(
            f"  {op_id:>7} {node.expr.op.name:<18} exact {expected:>7.2%}  "
            f"sampled {observed:>7.2%}  ({deviation:.1f} sigma)"
        )
    report = [
        "Exact participation vs sampled containment, TPC-H Q5 "
        f"({total:,} plans, {sample_size} samples):",
        *rows,
        f"\nworst deviation: {worst:.1f} standard errors",
    ]
    write_report("participation_q5.txt", "\n".join(report))
    assert worst < 6.0


def test_rarest_operators_report(benchmark, catalog):
    space = _q5_space(catalog)

    def rarest():
        counts = participation_counts(space.linked)
        return sorted(counts.items(), key=lambda kv: kv[1])[:10]

    bottom = benchmark.pedantic(rarest, rounds=1, iterations=1)
    total = space.count()
    lines = [
        "Rarest operators of Q5's space (targets for USEPLAN testing):",
    ]
    for op_id, count in bottom:
        node = space.linked.operators[tuple(int(x) for x in op_id.split("."))]
        lines.append(
            f"  {op_id:>7} {node.expr.op.name:<18} "
            f"in {count:,} plans ({count / total:.3%})"
        )
    write_report("participation_rarest.txt", "\n".join(lines))
