"""Exploration/optimization scaling benchmark: chain/star/clique/cycle × n.

Times end-to-end ``Session.optimize`` (and its exploration phase) on the
synthetic workloads for n in {6, 8, 10, 12}, with cross products off and
on, and writes ``BENCH_exploration.json`` at the repository root — the
perf trajectory that future optimizer PRs compare against.

Run directly (no pytest harness needed)::

    PYTHONPATH=src python benchmarks/bench_exploration_scaling.py
    PYTHONPATH=src python benchmarks/bench_exploration_scaling.py --full

Each record: ``{workload, n, cross, explore_s, total_s, groups, exprs}``
(seconds are the best of ``--repeat`` runs; ``groups``/``exprs`` are memo
sizes, identical across repeats).

By default the cross-product space is capped at n <= 10: with cross
products on, a 12-relation query's memo holds ~1.8M expressions (minutes
of runtime and >1 GB of memo), which drowns the signal the trajectory is
meant to track.  Pass ``--full`` to include it anyway.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.api import Session
from repro.optimizer.optimizer import OptimizerOptions
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
)

WORKLOADS = {
    "chain": chain_query,
    "star": star_query,
    "clique": clique_query,
    "cycle": cycle_query,
}

DEFAULT_SIZES = (6, 8, 10, 12)
CROSS_CAP_DEFAULT = 10  # see module docstring


def run_one(shape: str, n: int, cross: bool, repeat: int) -> dict:
    workload = WORKLOADS[shape](n, rows=5, seed=0)
    session = Session(
        workload.database,
        options=OptimizerOptions(allow_cross_products=cross),
    )
    best_total = best_explore = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = session.optimize(workload.sql)
        total = time.perf_counter() - start
        best_total = min(best_total, total)
        best_explore = min(best_explore, result.timings["explore"])
    return {
        "workload": shape,
        "n": n,
        "cross": cross,
        "explore_s": round(best_explore, 4),
        "total_s": round(best_total, 4),
        "groups": len(result.memo.groups),
        "exprs": result.memo.expression_count(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="runs per point (best is kept)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help=f"include cross-product runs above n={CROSS_CAP_DEFAULT}",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update matching cells of an existing output file instead of "
        "rewriting it (incremental regeneration of expensive cells)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_exploration.json",
    )
    args = parser.parse_args(argv)

    records = []
    for shape in WORKLOADS:
        for n in args.sizes:
            for cross in (False, True):
                if cross and not args.full and n > CROSS_CAP_DEFAULT:
                    print(
                        f"skip {shape} n={n} cross=on (pass --full to include)",
                        flush=True,
                    )
                    continue
                record = run_one(shape, n, cross, args.repeat)
                records.append(record)
                print(
                    f"{shape:>6} n={n:>2} cross={'on ' if cross else 'off'} "
                    f"explore={record['explore_s']:>8.4f}s "
                    f"total={record['total_s']:>8.4f}s "
                    f"groups={record['groups']:>5} exprs={record['exprs']:>8}",
                    flush=True,
                )

    if args.merge and args.output.exists():
        key = lambda r: (r["workload"], r["n"], r["cross"])
        merged = {key(r): r for r in json.loads(args.output.read_text())}
        merged.update({key(r): r for r in records})
        records = list(merged.values())
    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.output} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
