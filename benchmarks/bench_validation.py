"""Experiment E7 — USEPLAN validation throughput (paper Section 4).

The paper's testing methodology executes many plans per query.  This
benchmark measures the end-to-end validation rate (plans executed and
compared per second) on the micro TPC-H database, exhaustively for small
spaces and by uniform sampling for large ones.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.optimizer.optimizer import OptimizerOptions
from repro.testing.harness import PlanValidator
from repro.workloads.tpch_queries import tpch_query

TWO_TABLE = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)

_REPORTS = []


def test_exhaustive_validation_two_table(benchmark, micro_db):
    validator = PlanValidator(
        micro_db, OptimizerOptions(allow_cross_products=False)
    )

    def run():
        return validator.validate_sql(TWO_TABLE, max_exhaustive=100_000)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.exhaustive and report.all_equal
    _REPORTS.append(("2-table exhaustive", report))


@pytest.mark.parametrize("name", ["Q3", "Q10", "Q5"])
def test_sampled_validation(benchmark, micro_db, name):
    validator = PlanValidator(
        micro_db, OptimizerOptions(allow_cross_products=False)
    )

    def run():
        return validator.validate_sql(
            tpch_query(name).sql, max_exhaustive=0, sample_size=30, seed=0
        )

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.all_equal, report.render()
    _REPORTS.append((f"{name} sampled(30)", report))


def test_validation_report(benchmark):
    def noop():
        return len(_REPORTS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Section 4 validation throughput (micro TPC-H database):",
        f"{'scenario':>22}  {'plans':>7}  {'space size':>16}  {'sec':>7}  {'plans/s':>8}",
    ]
    for label, report in _REPORTS:
        rate = report.executed_plans / max(report.elapsed_seconds, 1e-9)
        lines.append(
            f"{label:>22}  {report.executed_plans:>7}  "
            f"{report.total_plans:>16,}  {report.elapsed_seconds:>7.3f}  "
            f"{rate:>8.1f}"
        )
    write_report("validation_throughput.txt", "\n".join(lines))
