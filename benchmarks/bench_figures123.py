"""Experiment E3 — the paper's **Figures 1-3** walkthrough.

Figure 1: copying the initial plan into the MEMO.  Figure 2: the
partially expanded memo for (A ⋈ B) ⋈ C.  Figure 3: materialized links
and per-operator plan counts.  We rebuild the exact structure, verify
every published ``N(v)`` annotation, and benchmark the preparatory step
(link materialization + counting), which the paper reports as negligible.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.planspace.counting import annotate_counts
from repro.planspace.links import materialize_links
from repro.workloads.paper_example import (
    EXPECTED_COUNTS,
    EXPECTED_TOTAL,
    build_paper_example,
)


def test_figure2_memo_reconstruction(benchmark):
    example = benchmark(build_paper_example)
    report = [
        "Figure 2 reconstruction — the memo for (A JOIN B) JOIN C:",
        example.memo.render(),
    ]
    write_report("figures123_memo.txt", "\n".join(report))
    assert example.memo.expression_count() == 16  # 11 physical + 5 logical


def test_figure3_counts(benchmark):
    example = build_paper_example()

    def prepare_and_count():
        space = materialize_links(example.memo)
        total = annotate_counts(space)
        return space, total

    space, total = benchmark(prepare_and_count)
    assert total == EXPECTED_TOTAL

    lines = [
        "Figure 3 reproduction — per-operator plan counts N(v):",
        f"{'paper id':>8}  {'ours':>6}  {'N(v) paper':>10}  {'N(v) ours':>9}",
    ]
    for paper_id, expected in sorted(EXPECTED_COUNTS.items()):
        ours = example.paper_ids[paper_id]
        gid, lid = map(int, ours.split("."))
        got = space.operator(gid, lid).count
        lines.append(f"{paper_id:>8}  {ours:>6}  {expected:>10}  {got:>9}")
        assert got == expected, paper_id
    lines.append(f"total plans rooted in the root group: {total} (paper: 22 + 22)")
    write_report("figures123_counts.txt", "\n".join(lines))
