"""Experiment E6 — unranking performance (paper Section 3.3).

"Unranking is in O(m), m being the number of operators in the tree ...
unranking takes only a small fraction of the time needed for counting and
is thus negligible."

We measure single-plan unranking against the one-time counting cost on
the TPC-H spaces and assert the "small fraction" claim.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_report
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.counting import annotate_counts
from repro.planspace.links import materialize_links
from repro.planspace.unranking import Unranker
from repro.util.rng import make_rng
from repro.workloads.tpch_queries import tpch_query

_ROWS: list[tuple[str, float, float, float]] = []


def _prepared_space(catalog, name, cross):
    result = Optimizer(
        catalog, OptimizerOptions(allow_cross_products=cross)
    ).optimize_sql(tpch_query(name).sql)
    space = materialize_links(result.memo, root_required=result.root_order)
    started = time.perf_counter()
    annotate_counts(space)
    counting_seconds = time.perf_counter() - started
    return space, counting_seconds


@pytest.mark.parametrize("name", ["Q5", "Q7", "Q8", "Q9"])
def test_unranking_single_plan(benchmark, catalog, name):
    space, counting_seconds = _prepared_space(catalog, name, cross=False)
    unranker = Unranker(space)
    rng = make_rng(0)
    total = unranker.total

    result = benchmark(lambda: unranker.unrank(rng.randrange(total)))
    assert result.size() > 5

    # Compare one unrank call against the full counting pass.
    started = time.perf_counter()
    for _ in range(100):
        unranker.unrank(rng.randrange(total))
    per_unrank = (time.perf_counter() - started) / 100
    _ROWS.append((name, counting_seconds, per_unrank, per_unrank / counting_seconds))
    assert per_unrank < counting_seconds, (
        "a single unranking should be cheaper than the one-time counting pass"
    )


def test_unranking_throughput_q5(benchmark, catalog):
    """Plans per second when drawing a full uniform sample (Section 5 uses
    10,000 plans per query)."""
    space, _ = _prepared_space(catalog, "Q5", cross=False)
    unranker = Unranker(space)
    rng = make_rng(1)
    total = unranker.total

    def draw_batch():
        for _ in range(100):
            unranker.unrank(rng.randrange(total))
        return 100

    benchmark(draw_batch)


def test_unranking_report(benchmark):
    def noop():
        return len(_ROWS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Unranking vs counting (Section 3.3: 'only a small fraction'):",
        f"{'query':>6}  {'counting s':>11}  {'unrank s':>10}  {'fraction':>9}",
    ]
    for name, counting, unrank, fraction in _ROWS:
        lines.append(
            f"{name:>6}  {counting:>11.5f}  {unrank:>10.6f}  {fraction:>9.4f}"
        )
    write_report("unranking_vs_counting.txt", "\n".join(lines))
