"""Experiment E8 — small-query degeneration (paper Section 5).

"The distributions of queries that contained few tables were of no
particular shape but consisted only of random noise (e.g. TPC-H 6)."

We contrast Q6 (one relation) and a two-table join against the
join-intensive Q5: small spaces, no exponential shape, while Q5 shows the
characteristic right-skewed concentration near the optimum.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_size, write_report
from repro.experiments.distributions import sample_cost_distribution
from repro.workloads.tpch_queries import tpch_query

TWO_TABLE = (
    "SELECT n.n_name, r.r_name FROM nation n, region r "
    "WHERE n.n_regionkey = r.r_regionkey"
)

_RESULTS = {}


def _run(catalog, label, sql):
    dist = sample_cost_distribution(
        catalog,
        sql,
        query_name=label,
        allow_cross_products=False,
        sample_size=min(sample_size(), 2000),
        seed=0,
    )
    _RESULTS[label] = dist
    return dist


def test_q6_degenerate_space(benchmark, catalog):
    dist = benchmark.pedantic(
        _run, args=(catalog, "Q6", tpch_query("Q6").sql), rounds=1, iterations=1
    )
    # A single-table aggregate has only a handful of plans.
    assert dist.total_plans < 100


def test_two_table_small_space(benchmark, catalog):
    dist = benchmark.pedantic(
        _run, args=(catalog, "2-table", TWO_TABLE), rounds=1, iterations=1
    )
    assert dist.total_plans < 10_000


def test_q5_reference_shape(benchmark, catalog):
    dist = benchmark.pedantic(
        _run, args=(catalog, "Q5", tpch_query("Q5").sql), rounds=1, iterations=1
    )
    assert dist.total_plans > 10**6


def test_small_query_report(benchmark):
    def noop():
        return len(_RESULTS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Section 5, small queries: degenerate spaces vs join-intensive Q5",
        f"{'query':>8}  {'#plans':>16}  {'distinct costs':>14}  {'skew':>6}",
    ]
    for label, dist in _RESULTS.items():
        distinct = len(set(round(c, 6) for c in dist.scaled_costs))
        lines.append(
            f"{label:>8}  {dist.total_plans:>16,}  {distinct:>14}  "
            f"{dist.skewness():>6.2f}"
        )
    lines.append(
        "\nSmall spaces collapse to a handful of distinct cost values "
        "(no smooth shape), while Q5 spans a continuum."
    )
    write_report("small_queries.txt", "\n".join(lines))

    q5 = _RESULTS.get("Q5")
    q6 = _RESULTS.get("Q6")
    if q5 is not None and q6 is not None:
        q5_distinct = len(set(round(c, 6) for c in q5.scaled_costs))
        q6_distinct = len(set(round(c, 6) for c in q6.scaled_costs))
        assert q6_distinct < 50 < q5_distinct
