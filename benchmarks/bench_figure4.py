"""Experiment E2 — reproduce the paper's **Figure 4**.

ASCII histograms of the lower 50% of sampled scaled costs for TPC-H
Q5/Q7/Q8/Q9 (no cross products, matching the paper's figure), annotated
with the fitted Gamma shape parameter.  Written to
``benchmarks/output/figure4.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_size, write_report
from repro.experiments.distributions import sample_cost_distribution
from repro.experiments.figure4 import figure4_histogram, render_figure4
from repro.workloads.tpch_queries import tpch_query

_QUERIES = ("Q5", "Q7", "Q8", "Q9")
_DISTS: dict[str, object] = {}


def _distribution(catalog, name):
    dist = _DISTS.get(name)
    if dist is None:
        dist = sample_cost_distribution(
            catalog,
            tpch_query(name).sql,
            query_name=name,
            allow_cross_products=False,
            sample_size=sample_size(),
            seed=0,
        )
        _DISTS[name] = dist
    return dist


@pytest.mark.parametrize("name", _QUERIES)
def test_figure4_panel(benchmark, catalog, name):
    dist = benchmark.pedantic(
        _distribution, args=(catalog, name), rounds=1, iterations=1
    )
    histogram = figure4_histogram(dist)
    # The zoom-in covers exactly half the sample.
    assert sum(histogram.counts) == dist.sample_size // 2
    # Right-skew: mass concentrates toward the optimum within the zoom-in.
    first_quarter = sum(histogram.counts[: len(histogram.counts) // 4])
    last_quarter = sum(histogram.counts[-len(histogram.counts) // 4 :])
    assert first_quarter > last_quarter


def test_figure4_report(benchmark, catalog):
    def assemble():
        return [_distribution(catalog, name) for name in _QUERIES]

    distributions = benchmark.pedantic(assemble, rounds=1, iterations=1)
    body = render_figure4(distributions)
    header = (
        "Figure 4 reproduction — lower 50% of sampled scaled costs, "
        f"{sample_size()} plans per query (no cross products)\n"
        "The paper observes exponential-like decay (Gamma shape ~ 1).\n"
    )
    write_report("figure4.txt", header + body)

    shapes = [d.gamma_shape() for d in distributions]
    assert all(s is not None for s in shapes)
    # "Gamma-distributions with shape parameter close to 1": accept the
    # same order of magnitude rather than an exact match.
    assert all(0.1 < s < 5.0 for s in shapes), shapes
    assert all(d.skewness() > 0 for d in distributions)
