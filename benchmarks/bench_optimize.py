"""Exact-optimization benchmark: columnar vs object memo, across topologies.

Times exact ``Session.optimize`` (full memo pipeline, best plan out) for
chain/star/clique/cycle joins of n in {8, 10, 12}, no-cross and
cross-product modes, on both physical-memo representations:

* ``columnar`` — batched struct-of-arrays implementation + the layered
  best-plan DP (the default serving path);
* ``object`` — per-expression ``GroupExpr`` construction + the recursive
  memoized search (the pre-columnar path, kept as fallback/oracle).

Each record carries the end-to-end wall time and the memo-build vs
best-plan phase split (``implement_s``/``bestplan_s``, plus
``explore_s`` for context) so regressions localize immediately.  Writes
``BENCH_optimize.json`` at the repository root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_optimize.py
    PYTHONPATH=src python benchmarks/bench_optimize.py --full

By default the *object* engine skips the cells whose memos take minutes
to build (no-cross clique above n=10, every cross-product cell above
n=10) — making those cells serveable is the point of the columnar path;
``--full`` lifts the caps.  Costs are asserted identical whenever both
engines run a cell.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.workloads.synthetic import (
    chain_query,
    clique_query,
    cycle_query,
    star_query,
)

WORKLOADS = {
    "chain": chain_query,
    "star": star_query,
    "clique": clique_query,
    "cycle": cycle_query,
}

DEFAULT_SIZES = (8, 10, 12)
#: object-engine caps (see module docstring); columnar runs all cells
OBJ_NOCROSS_CLIQUE_CAP = 10
OBJ_CROSS_CAP = 10


def run_cell(shape: str, n: int, cross: bool, engine: str, repeat: int) -> dict:
    workload = WORKLOADS[shape](n, rows=5, seed=0)
    options = OptimizerOptions(
        allow_cross_products=cross, columnar=(engine == "columnar")
    )
    bound = Binder(workload.catalog).bind(parse(workload.sql))
    record: dict = {
        "workload": shape,
        "n": n,
        "cross": cross,
        "engine": engine,
    }
    best_total = float("inf")
    result = None
    for _ in range(repeat):
        # Drop the previous run's memo before collecting: tearing down a
        # multi-hundred-MB store inside the timed window doubles a sample.
        del result
        gc.collect()
        start = time.perf_counter()
        result = Optimizer(workload.catalog, options).optimize(bound)
        total = time.perf_counter() - start
        if total < best_total:
            best_total = total
            record["explore_s"] = round(result.timings["explore"], 4)
            record["implement_s"] = round(result.timings["implement"], 4)
            record["bestplan_s"] = round(result.timings["bestplan"], 4)
            if "fused" in result.timings:
                record["fused_s"] = round(result.timings["fused"], 4)
            record["kernel"] = result.timings.get("kernel", "pure")
            record["best_cost"] = result.best_cost
            record["physical_ops"] = result.memo.physical_expression_count()
    record["total_s"] = round(best_total, 4)
    return record


def object_skipped(shape: str, n: int, cross: bool, full: bool) -> bool:
    if full:
        return False
    if cross and n > OBJ_CROSS_CAP:
        return True
    return not cross and shape == "clique" and n > OBJ_NOCROSS_CLIQUE_CAP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="runs per cell (best is kept)"
    )
    parser.add_argument(
        "--full", action="store_true", help="lift the object-engine caps"
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=sorted(WORKLOADS),
        default=list(WORKLOADS),
        help="restrict to these topologies",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update matching cells of an existing output file instead of "
        "rewriting it (incremental regeneration of expensive cells)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_optimize.json",
    )
    args = parser.parse_args(argv)

    try:  # warm numpy up front: a process-level, not per-cell, cost
        import numpy  # noqa: F401
    except ImportError:
        pass

    records = []
    costs: dict[tuple, float] = {}
    for shape in args.workloads:
        for n in args.sizes:
            for cross in (False, True):
                for engine in ("columnar", "object"):
                    if engine == "object" and object_skipped(
                        shape, n, cross, args.full
                    ):
                        print(
                            f"skip {shape} n={n} cross={'on' if cross else 'off'}"
                            f" object (pass --full to include)",
                            flush=True,
                        )
                        continue
                    record = run_cell(shape, n, cross, engine, args.repeat)
                    records.append(record)
                    cell = (shape, n, cross)
                    prior = costs.setdefault(cell, record["best_cost"])
                    assert prior == record["best_cost"], (
                        f"engines disagree on the optimum for {cell}"
                    )
                    print(
                        f"{shape:>6} n={n:>2} cross={'on ' if cross else 'off'} "
                        f"{engine:>8} total={record['total_s']:>9.4f}s "
                        f"implement={record['implement_s']:>8.4f}s "
                        f"bestplan={record['bestplan_s']:>8.4f}s "
                        f"ops={record['physical_ops']:>8}",
                        flush=True,
                    )

    if args.merge and args.output.exists():
        key = lambda r: (r["workload"], r["n"], r["cross"], r["engine"])
        merged = {key(r): r for r in json.loads(args.output.read_text())}
        merged.update({key(r): r for r in records})
        records = list(merged.values())
    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.output} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
