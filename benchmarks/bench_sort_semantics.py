"""Experiment E14 (ablation) — enforcer-link semantics and space size.

Decoding the paper's Figure 3 annotations fixed a subtle semantic: a Sort
enforcer links to *all* non-enforcer operators of its group, including
ones already delivering the sort order (``N(Sort 1.4) = 2`` only adds up
that way).  This ablation quantifies what that choice costs: the space
with the paper's semantics vs. the space where redundant sorts are
dropped (``include_redundant_sorts=False``).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.workloads.tpch_queries import tpch_query

_ROWS = []


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q9"])
def test_sort_semantics(benchmark, catalog, name):
    result = Optimizer(
        catalog, OptimizerOptions(allow_cross_products=False)
    ).optimize_sql(tpch_query(name).sql)

    def build_both():
        paper = PlanSpace.from_result(result, include_redundant_sorts=True)
        strict = PlanSpace.from_result(result, include_redundant_sorts=False)
        return paper.count(), strict.count()

    paper_count, strict_count = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    _ROWS.append((name, paper_count, strict_count))
    assert strict_count < paper_count
    # Both are valid spaces over the same memo; strict is a strict subset.
    assert strict_count > 0


def test_sort_semantics_report(benchmark):
    def noop():
        return len(_ROWS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Enforcer-link semantics ablation (E14):",
        f"{'query':>6}  {'paper semantics':>22}  {'no redundant sorts':>22}  {'ratio':>7}",
    ]
    for name, paper, strict in _ROWS:
        lines.append(
            f"{name:>6}  {paper:>22,}  {strict:>22,}  {paper / strict:>6.1f}x"
        )
    lines.append(
        "\nThe paper's Figure 3 annotations (N(Sort)=2 over an already-"
        "sorted scan) pin down the inclusive semantics; the strict variant "
        "shows how much of the count it contributes."
    )
    write_report("sort_semantics_ablation.txt", "\n".join(lines))
