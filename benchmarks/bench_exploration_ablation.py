"""Experiment E9 (ablation) — rule-based vs bottom-up exploration.

The paper notes its technique is agnostic to how the memo is populated
(transformation rules a la Volcano, or bottom-up enumeration a la
Starburst).  We check the two strategies produce *identical plan spaces*
on the TPC-H queries and compare their exploration cost, plus the effect
of restricted rule sets (commutativity only, no exchange).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.optimizer.explorer import RuleSet
from repro.optimizer.optimizer import (
    ExplorationStrategy,
    Optimizer,
    OptimizerOptions,
)
from repro.planspace.space import PlanSpace
from repro.workloads.tpch_queries import tpch_query

_ROWS = []


def _optimize(catalog, name, strategy, rules=None):
    options = OptimizerOptions(
        allow_cross_products=False,
        exploration=strategy,
        rules=rules if rules is not None else RuleSet(),
    )
    return Optimizer(catalog, options).optimize_sql(tpch_query(name).sql)


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q9"])
def test_enumeration_strategy(benchmark, catalog, name):
    result = benchmark.pedantic(
        _optimize,
        args=(catalog, name, ExplorationStrategy.ENUMERATION),
        rounds=2,
        iterations=1,
    )
    count = PlanSpace.from_result(result).count()
    _ROWS.append((name, "enumeration", count, result.timings["explore"]))
    assert count > 0


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q9"])
def test_transformation_strategy(benchmark, catalog, name):
    result = benchmark.pedantic(
        _optimize,
        args=(catalog, name, ExplorationStrategy.TRANSFORMATION),
        rounds=2,
        iterations=1,
    )
    count = PlanSpace.from_result(result).count()
    _ROWS.append((name, "transformation", count, result.timings["explore"]))
    assert count > 0


@pytest.mark.parametrize("name", ["Q3", "Q5"])
def test_strategies_produce_identical_spaces(benchmark, catalog, name):
    def compare():
        enum_result = _optimize(catalog, name, ExplorationStrategy.ENUMERATION)
        rule_result = _optimize(catalog, name, ExplorationStrategy.TRANSFORMATION)
        return (
            PlanSpace.from_result(enum_result).count(),
            PlanSpace.from_result(rule_result).count(),
            enum_result.best_cost,
            rule_result.best_cost,
        )

    enum_count, rule_count, enum_cost, rule_cost = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert enum_count == rule_count
    assert abs(enum_cost - rule_cost) < 1e-9 * max(enum_cost, 1.0)


def test_restricted_rule_sets(benchmark, catalog):
    """Commutativity alone explores only mirrored left-deep trees."""

    def run():
        full = _optimize(catalog, "Q3", ExplorationStrategy.TRANSFORMATION)
        commute_only = _optimize(
            catalog,
            "Q3",
            ExplorationStrategy.TRANSFORMATION,
            rules=RuleSet(True, False, False, False),
        )
        return (
            PlanSpace.from_result(full).count(),
            PlanSpace.from_result(commute_only).count(),
        )

    full_count, commute_count = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(("Q3", "commute-only", commute_count, 0.0))
    assert commute_count < full_count


def test_exploration_report(benchmark):
    def noop():
        return len(_ROWS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Exploration ablation (E9): strategy vs space size",
        f"{'query':>6}  {'strategy':>16}  {'plans':>22}  {'explore s':>10}",
    ]
    for name, strategy, count, seconds in _ROWS:
        lines.append(f"{name:>6}  {strategy:>16}  {count:>22,}  {seconds:>10.4f}")
    write_report("exploration_ablation.txt", "\n".join(lines))
