"""Supporting benchmark — optimizer pipeline phase costs.

Not a paper table, but context for E5/E6: where the time goes between
parsing and a ready-to-sample plan space for each Table 1 query.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.planspace.space import PlanSpace
from repro.workloads.tpch_queries import tpch_query

_ROWS = []


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q7", "Q8", "Q9"])
@pytest.mark.parametrize("cross", [False, True])
def test_optimize_pipeline(benchmark, catalog, name, cross):
    options = OptimizerOptions(allow_cross_products=cross)

    def run():
        return Optimizer(catalog, options).optimize_sql(tpch_query(name).sql)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    space = PlanSpace.from_result(result)
    _ROWS.append(
        (
            name,
            cross,
            len(result.memo.groups),
            result.memo.physical_expression_count(),
            space.count(),
            dict(result.timings),
        )
    )
    assert result.best_cost > 0


def test_pipeline_report(benchmark):
    def noop():
        return len(_ROWS)

    benchmark.pedantic(noop, rounds=1, iterations=1)
    lines = [
        "Optimizer pipeline phases (seconds) and memo sizes:",
        f"{'query':>6} {'cross':>6} {'groups':>7} {'phys ops':>9} "
        f"{'plans':>22} {'explore':>8} {'implement':>9} {'bestplan':>9}",
    ]
    for name, cross, groups, ops, plans, timings in _ROWS:
        lines.append(
            f"{name:>6} {str(cross):>6} {groups:>7} {ops:>9} {plans:>22,} "
            f"{timings.get('explore', 0):>8.4f} "
            f"{timings.get('implement', 0):>9.4f} "
            f"{timings.get('bestplan', 0):>9.4f}"
        )
    write_report("optimizer_pipeline.txt", "\n".join(lines))
